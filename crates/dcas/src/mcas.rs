//! Lock-free multi-word CAS via operation descriptors (Harris–Fraser).
//!
//! This is the primary DCAS strategy. The construction follows Harris,
//! Fraser & Pratt, *A Practical Multi-Word Compare-and-Swap Operation*
//! (DISC 2002) — the canonical software realization of the multi-location
//! atomic the LFRC paper assumes in hardware:
//!
//! * An **MCAS descriptor** publishes the whole operation (entries sorted
//!   by cell address, plus a three-state status word).
//! * Phase 1 installs the descriptor into each cell via **RDCSS** — a
//!   restricted double-compare single-swap that atomically checks "is the
//!   operation still undecided?" while swapping `old → descriptor`. Any
//!   mismatch decides the operation `Failed`.
//! * The status CAS (`Undecided → Succeeded/Failed`) is the linearization
//!   point.
//! * Phase 2 replaces descriptor pointers with the new (or, on failure,
//!   the old) values.
//!
//! Threads that encounter a descriptor *help* the operation to completion
//! and retry their own — no thread ever waits on another, so every cell
//! operation is lock-free.
//!
//! Descriptor lifetime is governed by [`DescMode`] (see [`crate::desc`]).
//! The primary mode, `Immortal`, follows Arbel-Raviv & Brown's *Reuse,
//! don't Recycle*: each thread owns one immortal sequence-numbered MCAS
//! slot and one RDCSS slot, reused in place for every attempt, so the hot
//! path performs **zero allocation and zero epoch deferral**; helpers
//! validate the packed sequence on every descriptor access and abandon on
//! mismatch (DESIGN.md §5.14). The `Pooled` mode (slab pool + epoch
//! retirement, PR 4) and `Boxed` mode (global allocator + epoch
//! retirement) are kept for ablation — there, an installer remains pinned
//! for as long as its descriptor can be reachable from any cell, which
//! makes helping safe (see DESIGN.md §5.2 for the full argument).

use std::fmt;
use std::sync::atomic::{fence, AtomicPtr, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::desc::{self, DescMode, MAX_SLOTS, SEQ_MASK};
use crate::emu::with_guard;
use crate::instrument::{yield_point, InstrSite};
use crate::{DcasWord, McasOp, MAX_PAYLOAD};
use lfrc_obs::counters::incr;
use lfrc_obs::Counter;

const TAG_MASK: u64 = 0b11;
const TAG_VALUE: u64 = 0b00;
const TAG_MCAS: u64 = 0b01;
const TAG_RDCSS: u64 = 0b10;

const UNDECIDED: u64 = 0;
const SUCCEEDED: u64 = 1;
const FAILED: u64 = 2;
/// Immortal slots only: the owner is mid-claim — the sequence has been
/// bumped but the entry fields are not yet consistent. Helpers observing
/// this state abandon. Heap-mode status words never hold it.
const CLAIMING: u64 = 3;

/// An immortal slot's status word packs the slot's current sequence with
/// the operation state: `(seq << 2) | state`. The status CAS that decides
/// an operation therefore compares the sequence *and* the state in one
/// shot — a helper holding a stale word cannot decide (or corrupt) the
/// slot's next operation, because its expected status carries the old
/// sequence. This is the linchpin of the seq-validation argument
/// (DESIGN.md §5.14).
#[inline]
fn pack_status(seq: u64, state: u64) -> u64 {
    debug_assert!(state <= CLAIMING);
    ((seq & SEQ_MASK) << 2) | state
}

#[inline]
fn status_state(status: u64) -> u64 {
    status & 0b11
}

#[inline]
fn status_seq(status: u64) -> u64 {
    (status >> 2) & SEQ_MASK
}

#[inline]
fn encode(value: u64) -> u64 {
    debug_assert!(value <= MAX_PAYLOAD, "payload exceeds 62 bits: {value:#x}");
    value << 2
}

#[inline]
fn decode(word: u64) -> u64 {
    debug_assert_eq!(word & TAG_MASK, TAG_VALUE);
    word >> 2
}

/// One sorted entry of an in-flight MCAS. `old`/`new` are *encoded* words.
#[derive(Clone, Copy)]
struct Entry {
    cell: *const AtomicU64,
    /// The cell's creation-order id — the global installation order (see
    /// [`McasWord::mcas`]).
    order: u64,
    old: u64,
    new: u64,
}

/// Entries stored inline in the descriptor up to this arity (DCAS needs
/// 2; nothing in the workspace exceeds 4), so the descriptor allocation
/// is the *only* allocation of an MCAS attempt — a `Vec` buffer per
/// attempt would put a global-allocator round trip back on the hot path
/// the slab pool exists to clear.
const INLINE_ENTRIES: usize = 4;

/// A fixed inline buffer with a `Vec` spill for arities above
/// [`INLINE_ENTRIES`].
enum Entries {
    Inline {
        buf: [Entry; INLINE_ENTRIES],
        len: u8,
    },
    Spill(Vec<Entry>),
}

impl Entries {
    fn from_sorted(sorted: &[Entry]) -> Self {
        if sorted.len() <= INLINE_ENTRIES {
            let mut buf = [Entry {
                cell: std::ptr::null(),
                order: 0,
                old: 0,
                new: 0,
            }; INLINE_ENTRIES];
            buf[..sorted.len()].copy_from_slice(sorted);
            Entries::Inline {
                buf,
                len: sorted.len() as u8,
            }
        } else {
            Entries::Spill(sorted.to_vec())
        }
    }

    fn as_slice(&self) -> &[Entry] {
        match self {
            Entries::Inline { buf, len } => &buf[..*len as usize],
            Entries::Spill(v) => v,
        }
    }
}

/// A published multi-word CAS operation.
struct McasDescriptor {
    status: AtomicU64,
    entries: Entries,
}

// Safety: descriptors are shared across helping threads and retired on a
// possibly different thread; all mutation goes through atomics.
unsafe impl Send for McasDescriptor {}
unsafe impl Sync for McasDescriptor {}

/// A restricted double-compare single-swap: swaps `data` from `old` to the
/// MCAS descriptor word iff the owning operation is still `Undecided`.
struct RdcssDescriptor {
    /// Points at the owning MCAS descriptor's status word.
    status_location: *const AtomicU64,
    data: *const AtomicU64,
    /// Encoded expected value of `data`.
    old: u64,
    /// Tagged MCAS descriptor word to install on success.
    mcas_word: u64,
}

unsafe impl Send for RdcssDescriptor {}
unsafe impl Sync for RdcssDescriptor {}

/// Allocates a descriptor from the slab pool when it is enabled — every
/// MCAS attempt allocates one, so this is the emulator's hottest
/// allocation site — falling back to the global allocator when the pool
/// is compiled out or the layout is unsupported. The returned flag
/// records which allocator owns the memory; pass it back to
/// [`desc_retire`].
fn desc_alloc<T>(value: T, use_pool: bool) -> (*mut T, bool) {
    // A thread killed at this yield point has published nothing yet; one
    // killed later (after install) leaves a descriptor that only helping
    // resolves. Fault plans also refuse the pool here to force the Box
    // fallback mid-schedule.
    yield_point(InstrSite::DescAlloc);
    let pool_ok =
        use_pool && crate::instrument::alloc_allowed(crate::instrument::AllocSite::DescPool);
    if let Some(raw) = pool_ok
        .then(|| lfrc_pool::alloc(std::alloc::Layout::new::<T>()))
        .flatten()
    {
        let ptr = raw.as_ptr() as *mut T;
        // Safety: a fresh pool slot of the requested layout.
        unsafe { ptr.write(value) };
        (ptr, true)
    } else {
        (Box::into_raw(Box::new(value)), false)
    }
}

/// Epoch-retires a descriptor from [`desc_alloc`]. Pool slots go back to
/// the slab (dropped in place) once the grace period passes; boxed
/// descriptors take the emulator's usual boxed-retire path.
///
/// # Safety
///
/// `ptr` must come from `desc_alloc` with the same `pooled` flag, must be
/// retired exactly once, and must be unreachable to threads that pin
/// after this call.
unsafe fn desc_retire<T: Send + 'static>(
    guard: &lfrc_reclaim::epoch::Guard<'_>,
    ptr: *mut T,
    pooled: bool,
) {
    unsafe fn release<T>(p: *mut ()) {
        let ptr = p as *mut T;
        // Safety: grace period has passed; `ptr` is a pool slot holding a
        // valid `T`.
        unsafe {
            std::ptr::drop_in_place(ptr);
            lfrc_pool::dealloc(std::ptr::NonNull::new_unchecked(ptr as *mut u8));
        }
    }
    if pooled {
        // Safety: forwarded caller contract.
        unsafe { guard.defer_fn(ptr as *mut (), release::<T>) };
    } else {
        // Safety: forwarded caller contract.
        unsafe { guard.defer_destroy(ptr) };
    }
}

// ---------------------------------------------------------------------------
// Immortal descriptor slots (DescMode::Immortal, DESIGN.md §5.14)
// ---------------------------------------------------------------------------

/// A thread's immortal MCAS descriptor slot. Never deallocated (leaked on
/// first claim); reused in place for every operation the owning thread
/// performs. All fields are atomics because helpers read them while the
/// owner may be rewriting them for the next operation — the seqlock
/// discipline ([`immortal_mcas_snapshot`]) makes such torn reads
/// detectable, and atomics make them defined behaviour.
struct ImmortalMcas {
    /// `(seq << 2) | state` — see [`pack_status`]. Initialized to
    /// `(0, FAILED)`: sequence 0 is never packed into a published word
    /// (the first claim bumps to 1), so no garbage word can validate
    /// against a fresh slot.
    status: AtomicU64,
    /// Entry count of the current operation (≤ [`INLINE_ENTRIES`]).
    len: AtomicU64,
    cells: [AtomicPtr<AtomicU64>; INLINE_ENTRIES],
    olds: [AtomicU64; INLINE_ENTRIES],
    news: [AtomicU64; INLINE_ENTRIES],
}

impl ImmortalMcas {
    fn new() -> Self {
        ImmortalMcas {
            status: AtomicU64::new(pack_status(0, FAILED)),
            len: AtomicU64::new(0),
            cells: std::array::from_fn(|_| AtomicPtr::new(std::ptr::null_mut())),
            olds: std::array::from_fn(|_| AtomicU64::new(0)),
            news: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A thread's immortal RDCSS descriptor slot. Unlike the MCAS slot there
/// is no operation state machine — an RDCSS is transient (installed and
/// completed within one `rdcss` call) — so the slot carries a plain
/// seqlock word: `(seq << 1) | claiming`. Initialized to claiming so no
/// garbage word validates before the first publish.
struct ImmortalRdcss {
    seq: AtomicU64,
    data: AtomicPtr<AtomicU64>,
    /// Encoded expected value of `data`.
    old: AtomicU64,
    /// Descriptor word (packed or tagged pointer) of the owning MCAS.
    mcas_word: AtomicU64,
    /// Status word of the owning MCAS when `mcas_word` is a heap
    /// descriptor; ignored for immortal owners (dispatch is on the word).
    status_location: AtomicPtr<AtomicU64>,
}

impl ImmortalRdcss {
    fn new() -> Self {
        ImmortalRdcss {
            seq: AtomicU64::new(1),
            data: AtomicPtr::new(std::ptr::null_mut()),
            old: AtomicU64::new(0),
            mcas_word: AtomicU64::new(0),
            status_location: AtomicPtr::new(std::ptr::null_mut()),
        }
    }
}

/// The slot registry: one shared index namespace, two parallel tables.
/// Slots are materialized lazily (one `Box::leak` per kind on an index's
/// first claim — never on the per-attempt path) and live forever; only
/// the *index* is recycled through the free list when a thread exits, so
/// a slot's sequence stays monotone across successive owning threads.
struct SlotTables {
    mcas: Box<[AtomicPtr<ImmortalMcas>]>,
    rdcss: Box<[AtomicPtr<ImmortalRdcss>]>,
    free: Mutex<Vec<u32>>,
    next: AtomicU64,
}

fn tables() -> &'static SlotTables {
    static TABLES: OnceLock<SlotTables> = OnceLock::new();
    TABLES.get_or_init(|| SlotTables {
        mcas: (0..MAX_SLOTS)
            .map(|_| AtomicPtr::new(std::ptr::null_mut()))
            .collect(),
        rdcss: (0..MAX_SLOTS)
            .map(|_| AtomicPtr::new(std::ptr::null_mut()))
            .collect(),
        free: Mutex::new(Vec::new()),
        next: AtomicU64::new(0),
    })
}

/// Resolves a published immortal word's MCAS slot. The pointer was
/// Release-published before the word could reach any cell, and the word
/// was read from a cell, so the slot is visible and never null.
#[inline]
fn mcas_slot(idx: usize) -> &'static ImmortalMcas {
    let p = tables().mcas[idx].load(Ordering::Acquire);
    debug_assert!(!p.is_null(), "immortal word names an unmaterialized slot");
    // Safety: slots are leaked (never freed) once published.
    unsafe { &*p }
}

#[inline]
fn rdcss_slot(idx: usize) -> &'static ImmortalRdcss {
    let p = tables().rdcss[idx].load(Ordering::Acquire);
    debug_assert!(!p.is_null(), "immortal word names an unmaterialized slot");
    // Safety: as for `mcas_slot`.
    unsafe { &*p }
}

/// A thread's claim on one slot index (both kinds). Dropping returns the
/// index — not the slots, which are immortal — to the free list.
struct ThreadSlots {
    idx: usize,
    mcas: &'static ImmortalMcas,
    rdcss: &'static ImmortalRdcss,
}

impl ThreadSlots {
    fn claim() -> ThreadSlots {
        let t = tables();
        let idx = t.free.lock().unwrap_or_else(|e| e.into_inner()).pop();
        let idx = match idx {
            Some(i) => i as usize,
            None => {
                let i = t.next.fetch_add(1, Ordering::Relaxed) as usize;
                assert!(i < MAX_SLOTS, "immortal descriptor slots exhausted");
                i
            }
        };
        // Materialize on first use of this index. Exclusive: only the
        // index holder stores, and an index is held by one thread at a
        // time. Release pairs with the Acquire in `mcas_slot`.
        if t.mcas[idx].load(Ordering::Acquire).is_null() {
            t.mcas[idx].store(Box::leak(Box::new(ImmortalMcas::new())), Ordering::Release);
            t.rdcss[idx].store(Box::leak(Box::new(ImmortalRdcss::new())), Ordering::Release);
        }
        ThreadSlots {
            idx,
            mcas: mcas_slot(idx),
            rdcss: rdcss_slot(idx),
        }
    }
}

impl Drop for ThreadSlots {
    fn drop(&mut self) {
        // The previous operation may be left mid-claim if the thread was
        // killed in the claim window (Stall-mode crash unwinding through
        // TLS teardown). That strands nothing: the next owner's claim
        // tolerates any prior state and simply bumps past it.
        let t = tables();
        t.free
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(self.idx as u32);
    }
}

thread_local! {
    static SLOTS: ThreadSlots = ThreadSlots::claim();
}

/// Runs `f` with the calling thread's slots. On TLS teardown (exit-path
/// MCAS traffic, e.g. a thread-exit flush destroying objects) falls back
/// to claiming a scratch index for the single operation and returning it
/// right after — the same degradation the counter shards use.
#[inline]
fn with_slots<R>(f: impl FnOnce(&ThreadSlots) -> R) -> R {
    let mut f = Some(f);
    match SLOTS.try_with(|s| (f.take().expect("with_slots closure reused"))(s)) {
        Ok(r) => r,
        Err(_) => {
            let scratch = ThreadSlots::claim();
            (f.take().expect("with_slots closure reused"))(&scratch)
        }
    }
}

/// One claim of an immortal MCAS slot: bumps the sequence, rewrites the
/// entry fields, publishes `(seq, UNDECIDED)`. Returns the new sequence.
///
/// The claim is single-writer (the slot's owning thread); concurrent
/// helpers only CAS the status from a seq-matching `UNDECIDED`, which the
/// CLAIMING hold keeps impossible mid-rewrite. The Acquire swap keeps the
/// field writes from floating above the CLAIMING edge; the Release
/// publish keeps them from sinking below it.
fn claim_mcas(slot: &ImmortalMcas, entries: &[Entry]) -> u64 {
    let prev = slot.status.load(Ordering::Relaxed);
    let seq = (status_seq(prev) + 1) & SEQ_MASK;
    if status_seq(prev) > 0 {
        incr(Counter::DescImmortalReuse);
    }
    yield_point(InstrSite::DescClaim);
    slot.status
        .swap(pack_status(seq, CLAIMING), Ordering::Acquire);
    slot.len.store(entries.len() as u64, Ordering::Relaxed);
    for (i, e) in entries.iter().enumerate() {
        slot.cells[i].store(e.cell as *mut AtomicU64, Ordering::Relaxed);
        slot.olds[i].store(e.old, Ordering::Relaxed);
        slot.news[i].store(e.new, Ordering::Relaxed);
    }
    yield_point(InstrSite::DescSeqBump);
    slot.status
        .store(pack_status(seq, UNDECIDED), Ordering::Release);
    seq
}

/// Seqlock read of an immortal MCAS slot's entries, valid only if the
/// slot still carries `seq`. `None` means the slot has moved on (or is
/// mid-claim): the operation the caller's word named is already decided
/// and fully unlinked, so abandoning is correct — there is nothing left
/// to help.
fn immortal_mcas_snapshot(
    slot: &ImmortalMcas,
    seq: u64,
) -> Option<([Entry; INLINE_ENTRIES], usize)> {
    let s1 = slot.status.load(Ordering::Acquire);
    if status_seq(s1) != seq || status_state(s1) == CLAIMING {
        incr(Counter::DescSeqInvalid);
        return None;
    }
    let len = (slot.len.load(Ordering::Relaxed) as usize).min(INLINE_ENTRIES);
    let mut entries = [Entry {
        cell: std::ptr::null(),
        order: 0,
        old: 0,
        new: 0,
    }; INLINE_ENTRIES];
    for (i, e) in entries.iter_mut().take(len).enumerate() {
        e.cell = slot.cells[i].load(Ordering::Relaxed);
        e.old = slot.olds[i].load(Ordering::Relaxed);
        e.new = slot.news[i].load(Ordering::Relaxed);
    }
    // Order the field reads before the re-read: if the sequence is
    // unchanged, no claim intervened and every field belongs to `seq`.
    fence(Ordering::Acquire);
    let s2 = slot.status.load(Ordering::Relaxed);
    if status_seq(s2) != seq || status_state(s2) == CLAIMING {
        incr(Counter::DescSeqInvalid);
        return None;
    }
    Some((entries, len))
}

#[inline]
unsafe fn mcas_desc<'a>(word: u64) -> &'a McasDescriptor {
    debug_assert_eq!(word & TAG_MASK, TAG_MCAS);
    // Safety: callers obtained `word` from a cell while pinned; the
    // descriptor's installer stays pinned while it is reachable.
    unsafe { &*((word & !TAG_MASK) as *const McasDescriptor) }
}

#[inline]
unsafe fn rdcss_desc<'a>(word: u64) -> &'a RdcssDescriptor {
    debug_assert_eq!(word & TAG_MASK, TAG_RDCSS);
    // Safety: as for `mcas_desc`.
    unsafe { &*((word & !TAG_MASK) as *const RdcssDescriptor) }
}

/// Whether the MCAS operation named by `mcas_word` is still undecided.
/// Dispatches on the word's encoding: an immortal owner's status word is
/// sequence-packed, so "undecided" means *undecided at that sequence* —
/// a reused slot reads as decided, which is exactly right (the named
/// operation is over). Mixed modes meet here: a heap-mode RDCSS can own
/// an immortal MCAS and vice versa.
fn owner_mcas_undecided(mcas_word: u64, status_location: *const AtomicU64) -> bool {
    if desc::is_immortal(mcas_word) {
        let slot = mcas_slot(desc::unpack_slot(mcas_word));
        slot.status.load(Ordering::SeqCst) == pack_status(desc::unpack_seq(mcas_word), UNDECIDED)
    } else {
        // Safety: `status_location` points into the owning heap MCAS
        // descriptor, alive under the epoch argument of DESIGN.md §5.2.
        unsafe { &*status_location }.load(Ordering::SeqCst) == UNDECIDED
    }
}

/// Finishes an RDCSS whose descriptor word was found in a cell: installs
/// the MCAS word if the operation is still undecided, else rolls back.
fn rdcss_complete(desc: &RdcssDescriptor, tagged: u64) {
    let replacement = if owner_mcas_undecided(desc.mcas_word, desc.status_location) {
        desc.mcas_word
    } else {
        desc.old
    };
    // Safety: `data` is a cell inside an allocation that cannot be
    // physically freed while any emulated operation is pinned.
    let _ = unsafe { &*desc.data }.compare_exchange(
        tagged,
        replacement,
        Ordering::SeqCst,
        Ordering::SeqCst,
    );
}

/// Finishes an RDCSS published as a packed immortal word. Every field
/// read is guarded by the slot's seqlock: if the owning thread has moved
/// on to a later RDCSS, this one is already complete (its word left every
/// cell before the slot could be reused), so abandoning is correct.
fn rdcss_complete_immortal(tagged: u64) {
    let slot = rdcss_slot(desc::unpack_slot(tagged));
    let seq = desc::unpack_seq(tagged);
    yield_point(InstrSite::DescHelperValidate);
    let s1 = slot.seq.load(Ordering::Acquire);
    if s1 != seq << 1 {
        // Stale (or mid-claim, which also means a later sequence).
        incr(Counter::DescSeqInvalid);
        incr(Counter::DescHelpAbandoned);
        return;
    }
    let data = slot.data.load(Ordering::Relaxed);
    let old = slot.old.load(Ordering::Relaxed);
    let mcas_word = slot.mcas_word.load(Ordering::Relaxed);
    let status_location = slot.status_location.load(Ordering::Relaxed);
    fence(Ordering::Acquire);
    if slot.seq.load(Ordering::Relaxed) != s1 {
        incr(Counter::DescSeqInvalid);
        incr(Counter::DescHelpAbandoned);
        return;
    }
    let replacement = if owner_mcas_undecided(mcas_word, status_location) {
        mcas_word
    } else {
        old
    };
    // Safety: `data` is a cell alive while pinned (module docs); the CAS
    // expects the seq-unique `tagged`, so a stale completer (validated
    // above, then raced by a reuse) can never write into a reused cell.
    let _ =
        unsafe { &*data }.compare_exchange(tagged, replacement, Ordering::SeqCst, Ordering::SeqCst);
}

/// Dispatches an RDCSS-tagged cell word to the right completion path.
fn rdcss_complete_any(word: u64) {
    if desc::is_immortal(word) {
        rdcss_complete_immortal(word);
    } else {
        // Safety: see `rdcss_desc`.
        rdcss_complete(unsafe { rdcss_desc(word) }, word);
    }
}

/// Performs one RDCSS for a phase-1 entry of `mcas_word`'s operation.
///
/// Returns the (tagged or encoded) word that decided the outcome:
/// `entry.old` means the swap logically happened; anything else is the
/// conflicting content observed.
fn rdcss(
    guard: &lfrc_reclaim::epoch::Guard<'_>,
    status_location: *const AtomicU64,
    entry: &Entry,
    mcas_word: u64,
) -> u64 {
    // Fast path: peek before claiming/allocating a descriptor.
    // Safety: cell alive while pinned (see module docs).
    let cell = unsafe { &*entry.cell };
    let peek = cell.load(Ordering::SeqCst);
    if peek & TAG_MASK == TAG_VALUE && peek != entry.old {
        return peek;
    }

    // The descriptor belongs to the *calling* thread (helpers included),
    // so its lifetime mode is the caller's — a Pooled-mode helper can
    // help an Immortal-mode owner's operation and vice versa; the
    // completion paths dispatch on the word encodings.
    match desc::desc_mode() {
        DescMode::Immortal => rdcss_immortal(cell, status_location, entry, mcas_word),
        mode => rdcss_heap(guard, cell, status_location, entry, mcas_word, mode),
    }
}

/// RDCSS with a claimed immortal slot: zero allocation, zero retirement.
/// The slot is safe to reuse as soon as this returns — completion (ours
/// or a helper's) removed the seq-unique word from the cell, and the
/// word can never be re-installed (any still-running helper's CAS
/// expects the old cell content, which is gone).
fn rdcss_immortal(
    cell: &AtomicU64,
    status_location: *const AtomicU64,
    entry: &Entry,
    mcas_word: u64,
) -> u64 {
    with_slots(|slots| {
        let slot = slots.rdcss;
        let prev = slot.seq.load(Ordering::Relaxed);
        let seq = ((prev >> 1) + 1) & SEQ_MASK;
        if prev >> 1 > 0 {
            incr(Counter::DescImmortalReuse);
        }
        yield_point(InstrSite::DescClaim);
        slot.seq.swap((seq << 1) | 1, Ordering::Acquire);
        slot.data
            .store(entry.cell as *mut AtomicU64, Ordering::Relaxed);
        slot.old.store(entry.old, Ordering::Relaxed);
        slot.mcas_word.store(mcas_word, Ordering::Relaxed);
        slot.status_location
            .store(status_location as *mut AtomicU64, Ordering::Relaxed);
        yield_point(InstrSite::DescSeqBump);
        slot.seq.store(seq << 1, Ordering::Release);
        let tagged = desc::pack(slots.idx, seq, TAG_RDCSS);
        loop {
            match cell.compare_exchange(entry.old, tagged, Ordering::SeqCst, Ordering::SeqCst) {
                Ok(_) => {
                    // Installed but not yet resolved: the exact window
                    // where a helping thread can observe the half-done
                    // operation.
                    yield_point(InstrSite::RdcssInstalled);
                    rdcss_complete_immortal(tagged);
                    break entry.old;
                }
                Err(cur) if cur & TAG_MASK == TAG_RDCSS => {
                    // Help the other RDCSS out of the way and retry.
                    incr(Counter::RdcssHelp);
                    rdcss_complete_any(cur);
                }
                Err(cur) => break cur,
            }
        }
    })
}

/// RDCSS with a heap descriptor (Pooled/Boxed ablation modes).
fn rdcss_heap(
    guard: &lfrc_reclaim::epoch::Guard<'_>,
    cell: &AtomicU64,
    status_location: *const AtomicU64,
    entry: &Entry,
    mcas_word: u64,
    mode: DescMode,
) -> u64 {
    let (desc, pooled) = desc_alloc(
        RdcssDescriptor {
            status_location,
            data: entry.cell,
            old: entry.old,
            mcas_word,
        },
        mode == DescMode::Pooled,
    );
    // Safety: freshly allocated; shared only via the tagged word below.
    let tagged = desc as u64 | TAG_RDCSS;
    let result = loop {
        match cell.compare_exchange(entry.old, tagged, Ordering::SeqCst, Ordering::SeqCst) {
            Ok(_) => {
                // Installed but not yet resolved: the exact window where a
                // helping thread can observe the half-done operation.
                yield_point(InstrSite::RdcssInstalled);
                // Now complete (install MCAS word or roll back).
                rdcss_complete(unsafe { &*desc }, tagged);
                break entry.old;
            }
            Err(cur) if cur & TAG_MASK == TAG_RDCSS => {
                // Help the other RDCSS out of the way and retry.
                incr(Counter::RdcssHelp);
                rdcss_complete_any(cur);
            }
            Err(cur) => break cur,
        }
    };
    // The descriptor is no longer installed anywhere (and only this thread
    // could install it), so it can be retired.
    // Safety: retired exactly once; unreachable to threads pinning later.
    unsafe { desc_retire(guard, desc, pooled) };
    result
}

/// Runs (or helps) the MCAS published as `tagged` to completion.
/// Returns whether the operation succeeded (for an abandoned immortal
/// help, `false` — callers helping a foreign operation ignore the value,
/// and an owner can never observe its own slot as stale).
fn mcas_help(guard: &lfrc_reclaim::epoch::Guard<'_>, tagged: u64) -> bool {
    if desc::is_immortal(tagged) {
        mcas_help_immortal(guard, tagged)
    } else {
        mcas_help_heap(guard, tagged)
    }
}

/// Helps an operation published as a packed immortal word. Every access
/// to the slot is sequence-validated; a stale word (the slot moved on)
/// is abandoned — the operation it named is decided and fully unlinked,
/// so there is nothing to help and acting on the slot's *current*
/// contents would mean helping a recycled operation with the wrong
/// entries (the signature bug class of immortal descriptors).
fn mcas_help_immortal(guard: &lfrc_reclaim::epoch::Guard<'_>, tagged: u64) -> bool {
    let slot = mcas_slot(desc::unpack_slot(tagged));
    let seq = desc::unpack_seq(tagged);
    yield_point(InstrSite::DescHelperValidate);
    let st = slot.status.load(Ordering::SeqCst);
    if status_seq(st) != seq {
        incr(Counter::DescSeqInvalid);
        incr(Counter::DescHelpAbandoned);
        return false;
    }
    if status_state(st) == UNDECIDED {
        let Some((entries, len)) = immortal_mcas_snapshot(slot, seq) else {
            incr(Counter::DescHelpAbandoned);
            return false;
        };
        let mut outcome = SUCCEEDED;
        'phase1: for entry in &entries[..len] {
            loop {
                let seen = rdcss(guard, &slot.status, entry, tagged);
                if seen == entry.old || seen == tagged {
                    // Installed (by us or a fellow helper): next entry.
                    break;
                }
                if seen & TAG_MASK == TAG_MCAS {
                    // A different operation owns this cell: help it first.
                    incr(Counter::McasHelp);
                    mcas_help(guard, seen);
                    continue;
                }
                // Genuine value mismatch: the whole operation fails.
                outcome = FAILED;
                break 'phase1;
            }
        }
        // Phase 1 is done but the operation is still undecided — the
        // status CAS below is the linearization point. Both compared
        // words carry `seq`, so a stale helper reaching this line after
        // a reuse cannot decide (or corrupt) the slot's new operation.
        yield_point(InstrSite::McasBeforeStatusCas);
        let _ = slot.status.compare_exchange(
            pack_status(seq, UNDECIDED),
            pack_status(seq, outcome),
            Ordering::SeqCst,
            Ordering::SeqCst,
        );
    }
    // Phase 2: unlink the descriptor word from every cell. Re-validate
    // first: if the slot moved on, the operation is already unlinked
    // (the owner completes phase 2 before returning, and returns before
    // reusing), and the slot's current entries are not ours to touch.
    let st = slot.status.load(Ordering::SeqCst);
    if status_seq(st) != seq {
        incr(Counter::DescSeqInvalid);
        incr(Counter::DescHelpAbandoned);
        return false;
    }
    let succeeded = status_state(st) == SUCCEEDED;
    let Some((entries, len)) = immortal_mcas_snapshot(slot, seq) else {
        incr(Counter::DescHelpAbandoned);
        return false;
    };
    for entry in &entries[..len] {
        let replacement = if succeeded { entry.new } else { entry.old };
        // Safety: cell alive while pinned. The CAS expects the
        // seq-unique `tagged`, so even a maximally-stale unlink attempt
        // cannot write into a cell a later operation owns.
        let _ = unsafe { &*entry.cell }.compare_exchange(
            tagged,
            replacement,
            Ordering::SeqCst,
            Ordering::SeqCst,
        );
    }
    succeeded
}

/// Helps an operation published as a tagged heap-descriptor pointer
/// (Pooled/Boxed modes) — validity comes from the epoch argument of
/// DESIGN.md §5.2 instead of sequence checks.
fn mcas_help_heap(guard: &lfrc_reclaim::epoch::Guard<'_>, tagged: u64) -> bool {
    // Safety: see `mcas_desc`.
    let desc = unsafe { mcas_desc(tagged) };
    if desc.status.load(Ordering::SeqCst) == UNDECIDED {
        let mut outcome = SUCCEEDED;
        'phase1: for entry in desc.entries.as_slice() {
            loop {
                let seen = rdcss(guard, &desc.status, entry, tagged);
                if seen == entry.old || seen == tagged {
                    // Installed (by us or a fellow helper): next entry.
                    break;
                }
                if seen & TAG_MASK == TAG_MCAS {
                    // A different operation owns this cell: help it first.
                    incr(Counter::McasHelp);
                    mcas_help(guard, seen);
                    continue;
                }
                // Genuine value mismatch: the whole operation fails.
                outcome = FAILED;
                break 'phase1;
            }
        }
        // Phase 1 is done but the operation is still undecided — the
        // status CAS below is the linearization point.
        yield_point(InstrSite::McasBeforeStatusCas);
        let _ =
            desc.status
                .compare_exchange(UNDECIDED, outcome, Ordering::SeqCst, Ordering::SeqCst);
    }
    // Phase 2: unlink the descriptor from every cell.
    let succeeded = desc.status.load(Ordering::SeqCst) == SUCCEEDED;
    for entry in desc.entries.as_slice() {
        let replacement = if succeeded { entry.new } else { entry.old };
        // Safety: cell alive while pinned.
        let _ = unsafe { &*entry.cell }.compare_exchange(
            tagged,
            replacement,
            Ordering::SeqCst,
            Ordering::SeqCst,
        );
    }
    succeeded
}

/// Resolves a cell to a plain (encoded) value, helping any in-flight
/// operation it encounters.
fn word_read(guard: &lfrc_reclaim::epoch::Guard<'_>, word: &AtomicU64) -> u64 {
    loop {
        let w = word.load(Ordering::SeqCst);
        match w & TAG_MASK {
            TAG_VALUE => return w,
            TAG_RDCSS => {
                incr(Counter::McasDescResolve);
                rdcss_complete_any(w)
            }
            TAG_MCAS => {
                incr(Counter::McasDescResolve);
                mcas_help(guard, w);
            }
            _ => unreachable!("corrupt cell tag"),
        }
    }
}

/// A DCAS-capable cell backed by the lock-free descriptor MCAS.
///
/// This is the strategy used by all LFRC structures unless a benchmark
/// explicitly selects [`crate::LockWord`] for ablation.
pub struct McasWord {
    word: AtomicU64,
    /// Creation-order id, used as the global MCAS installation order.
    ///
    /// Harris et al. sort by cell *address*; any consistent total order
    /// prevents livelock equally well, and creation order — unlike
    /// addresses — is identical across runs that perform the same
    /// allocation sequence, which is what lets `lfrc-sched` replay a
    /// seeded schedule bit-for-bit (see DESIGN.md).
    order: u64,
}

/// Source of [`McasWord::order`] ids.
static NEXT_CELL_ORDER: AtomicU64 = AtomicU64::new(0);

impl fmt::Debug for McasWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("McasWord")
            .field("value", &self.load())
            .finish()
    }
}

impl DcasWord for McasWord {
    fn new(value: u64) -> Self {
        McasWord {
            word: AtomicU64::new(encode(value)),
            order: NEXT_CELL_ORDER.fetch_add(1, Ordering::Relaxed),
        }
    }

    fn load(&self) -> u64 {
        with_guard(|guard| decode(word_read(guard, &self.word)))
    }

    fn store(&self, value: u64) {
        let new = encode(value);
        with_guard(|guard| loop {
            let cur = word_read(guard, &self.word);
            if self
                .word
                .compare_exchange(cur, new, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return;
            }
        })
    }

    fn compare_and_swap(&self, old: u64, new: u64) -> bool {
        let old = encode(old);
        let new = encode(new);
        with_guard(|guard| loop {
            let cur = word_read(guard, &self.word);
            if cur != old {
                return false;
            }
            if self
                .word
                .compare_exchange(cur, new, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return true;
            }
        })
    }

    fn mcas(ops: &[McasOp<'_, Self>]) -> bool {
        let entry_of = |op: &McasOp<'_, Self>| Entry {
            cell: &op.cell.word as *const AtomicU64,
            order: op.cell.order,
            old: encode(op.old),
            new: encode(op.new),
        };
        // Stage the entries on the stack when they fit inline, so the
        // descriptor itself is the attempt's only allocation.
        let mut inline = [Entry {
            cell: std::ptr::null(),
            order: 0,
            old: 0,
            new: 0,
        }; INLINE_ENTRIES];
        let mut spill = Vec::new();
        let entries: &mut [Entry] = if ops.len() <= INLINE_ENTRIES {
            for (slot, op) in inline.iter_mut().zip(ops) {
                *slot = entry_of(op);
            }
            &mut inline[..ops.len()]
        } else {
            spill.extend(ops.iter().map(entry_of));
            &mut spill
        };
        // A global installation order prevents livelock between
        // overlapping operations (Harris et al. §4). Creation order is
        // used instead of address order so schedules replay exactly.
        entries.sort_by_key(|e| e.order);
        debug_assert!(
            entries.windows(2).all(|w| w[0].cell != w[1].cell),
            "mcas entries must target distinct cells"
        );
        let mode = desc::desc_mode();
        with_guard(|guard| {
            // Immortal mode covers every arity the workspace uses
            // (≤ INLINE_ENTRIES); wider operations take the pooled heap
            // path — they already spill a Vec, so the descriptor is not
            // their only allocation anyway.
            if mode == DescMode::Immortal && entries.len() <= INLINE_ENTRIES {
                return with_slots(|slots| {
                    let seq = claim_mcas(slots.mcas, entries);
                    let tagged = desc::pack(slots.idx, seq, TAG_MCAS);
                    // No retirement: the slot is reusable the moment the
                    // owning help call returns — phase 2 removed the
                    // seq-unique word from every cell, and any helper
                    // still holding it validates (and abandons) before
                    // touching the slot's next life.
                    mcas_help(guard, tagged)
                });
            }
            let (desc, pooled) = desc_alloc(
                McasDescriptor {
                    status: AtomicU64::new(UNDECIDED),
                    entries: Entries::from_sorted(entries),
                },
                mode != DescMode::Boxed,
            );
            let tagged = desc as u64 | TAG_MCAS;
            let ok = mcas_help(guard, tagged);
            // By the time the owning help call returns, every helper that
            // could re-install the descriptor is itself still pinned, so
            // epoch retirement is safe (DESIGN.md §5.2).
            // Safety: retired exactly once, by the owner.
            unsafe { desc_retire(guard, desc, pooled) };
            ok
        })
    }

    fn strategy_name() -> &'static str {
        "mcas"
    }
}

/// Test-only hooks into the immortal machinery: deterministic
/// construction of stale descriptor words, and the pre-fix (unvalidated)
/// helper the integration suites keep as an executable counterexample.
/// Not part of the crate's API.
#[doc(hidden)]
pub mod test_support {
    use super::*;

    /// The packed word of the calling thread's MCAS slot at its current
    /// sequence — bit-identical to the word the thread's most recent
    /// immortal MCAS published. Performing another MCAS afterwards makes
    /// the returned word stale, which is how tests put a "helper holding
    /// a descriptor across a full reuse cycle" on the schedule.
    pub fn thread_mcas_word() -> u64 {
        with_slots(|s| {
            desc::pack(
                s.idx,
                status_seq(s.mcas.status.load(Ordering::SeqCst)),
                TAG_MCAS,
            )
        })
    }

    /// Whether the slot named by `word` has moved past the word's
    /// sequence (i.e. the word is stale and any help must abandon).
    pub fn seq_moved(word: u64) -> bool {
        let slot = mcas_slot(desc::unpack_slot(word));
        status_seq(slot.status.load(Ordering::SeqCst)) != desc::unpack_seq(word)
    }

    /// The calling thread's immortal slot index.
    pub fn current_slot_index() -> usize {
        with_slots(|s| s.idx)
    }

    /// The real, sequence-validated help path, exactly as helpers run it.
    pub fn validated_help(word: u64) -> bool {
        with_guard(|guard| mcas_help(guard, word))
    }

    /// Adopts a *free* slot index and proves it is still usable: claims
    /// it off the free list, runs a full claim/publish/decide cycle on
    /// its MCAS slot, and returns it. Crash tests call this with the
    /// index a Stall-killed thread held mid-claim, to show a crash
    /// inside the claim window strands nothing. Returns `None` if the
    /// index is not currently free (another thread adopted it first — in
    /// which case that thread's own operations exercise it), `Some(ok)`
    /// otherwise.
    pub fn adopt_and_exercise(idx: usize) -> Option<bool> {
        let t = tables();
        {
            let mut free = t.free.lock().unwrap_or_else(|e| e.into_inner());
            let pos = free.iter().position(|&i| i as usize == idx)?;
            free.swap_remove(pos);
        }
        // We now exclusively own `idx`, whatever state its previous
        // owner's crash left it in (untouched, CLAIMING, or UNDECIDED).
        let slot = mcas_slot(idx);
        let before = slot.status.load(Ordering::SeqCst);
        let seq = claim_mcas(slot, &[]);
        let after = slot.status.load(Ordering::SeqCst);
        let ok = after == pack_status(seq, UNDECIDED) && seq != status_seq(before);
        // Decide the probe op so the slot is not left helpable, then
        // hand the index back.
        let _ = slot.status.compare_exchange(
            pack_status(seq, UNDECIDED),
            pack_status(seq, FAILED),
            Ordering::SeqCst,
            Ordering::SeqCst,
        );
        t.free
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(idx as u32);
        Some(ok)
    }

    /// The pre-fix helper this PR's validation replaces: having captured
    /// `word` earlier, it "finishes" the operation by CASing the slot's
    /// status to FAILED whenever it observes UNDECIDED — without
    /// comparing the captured sequence against the slot's current one.
    /// If the slot was reused, this spuriously fails the *new* operation
    /// it never examined: the signature bug class of immortal
    /// descriptors. Returns whether the CAS landed.
    pub fn naive_stale_status_cas(word: u64) -> bool {
        let slot = mcas_slot(desc::unpack_slot(word));
        yield_point(InstrSite::DescHelperValidate);
        let st = slot.status.load(Ordering::SeqCst);
        if status_state(st) == UNDECIDED {
            slot.status
                .compare_exchange(
                    st,
                    pack_status(status_seq(st), FAILED),
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                )
                .is_ok()
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Barrier;

    #[test]
    fn encode_decode_roundtrip() {
        for v in [0u64, 1, 42, MAX_PAYLOAD] {
            assert_eq!(decode(encode(v)), v);
        }
    }

    #[test]
    fn mcas_three_way_rotate() {
        let cells: Vec<McasWord> = (0..3).map(McasWord::new).collect();
        let ok = McasWord::mcas(&[
            McasOp {
                cell: &cells[0],
                old: 0,
                new: 1,
            },
            McasOp {
                cell: &cells[1],
                old: 1,
                new: 2,
            },
            McasOp {
                cell: &cells[2],
                old: 2,
                new: 0,
            },
        ]);
        assert!(ok);
        assert_eq!(cells[0].load(), 1);
        assert_eq!(cells[1].load(), 2);
        assert_eq!(cells[2].load(), 0);
    }

    #[test]
    fn mcas_all_or_nothing() {
        let cells: Vec<McasWord> = (0..4).map(|_| McasWord::new(5)).collect();
        let ok = McasWord::mcas(&[
            McasOp {
                cell: &cells[0],
                old: 5,
                new: 6,
            },
            McasOp {
                cell: &cells[1],
                old: 5,
                new: 6,
            },
            McasOp {
                cell: &cells[2],
                old: 999,
                new: 6,
            }, // mismatch
            McasOp {
                cell: &cells[3],
                old: 5,
                new: 6,
            },
        ]);
        assert!(!ok);
        for c in &cells {
            assert_eq!(c.load(), 5, "failed MCAS must leave every cell untouched");
        }
    }

    #[test]
    fn identity_dcas_validates_snapshot() {
        // The no-op DCAS (new == old) is used by tests as an atomic
        // two-cell snapshot validator; it must succeed and leave values.
        let a = McasWord::new(7);
        let b = McasWord::new(8);
        assert!(McasWord::dcas(&a, &b, 7, 8, 7, 8));
        assert_eq!(a.load(), 7);
        assert_eq!(b.load(), 8);
    }

    #[test]
    fn unique_winner_under_contention() {
        const THREADS: usize = 8;
        let a = McasWord::new(0);
        let b = McasWord::new(0);
        let barrier = Barrier::new(THREADS);
        let mut wins = Vec::new();
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for t in 0..THREADS {
                let (a, b, barrier) = (&a, &b, &barrier);
                handles.push(s.spawn(move || {
                    barrier.wait();
                    McasWord::dcas(a, b, 0, 0, t as u64 + 1, t as u64 + 1)
                }));
            }
            for h in handles {
                wins.push(h.join().unwrap());
            }
        });
        assert_eq!(wins.iter().filter(|w| **w).count(), 1);
        let winner = a.load();
        assert_eq!(b.load(), winner);
        assert!((1..=THREADS as u64).contains(&winner));
    }

    #[test]
    fn bank_transfer_conserves_sum() {
        // Two accounts, concurrent transfers via DCAS, concurrent readers
        // validating snapshots with identity-DCAS: the observed sum must
        // always be exactly the initial total.
        const TOTAL: u64 = 1_000;
        const TRANSFERS: usize = 3_000;
        const MOVERS: usize = 4;
        const READERS: usize = 3;
        let a = McasWord::new(TOTAL);
        let b = McasWord::new(0);
        let barrier = Barrier::new(MOVERS + READERS);
        let done = AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..MOVERS {
                let (a, b, barrier) = (&a, &b, &barrier);
                s.spawn(move || {
                    barrier.wait();
                    let mut moved = 0;
                    let mut x = 1 + t as u64;
                    while moved < TRANSFERS {
                        let va = a.load();
                        let vb = b.load();
                        let amt = x % 7;
                        // Transfer in whichever direction has the funds,
                        // so no mover can starve on a drained account.
                        let (na, nb) = if va >= amt {
                            (va - amt, vb + amt)
                        } else {
                            (va + amt, vb - amt.min(vb))
                        };
                        if na + nb != TOTAL {
                            // b also short (transient torn reads): retry.
                            continue;
                        }
                        if McasWord::dcas(a, b, va, vb, na, nb) {
                            moved += 1;
                            x = x.wrapping_mul(6364136223846793005).wrapping_add(1) >> 33;
                        }
                    }
                });
            }
            let movers_done = &done;
            for _ in 0..READERS {
                let (a, b, barrier, done) = (&a, &b, &barrier, movers_done);
                s.spawn(move || {
                    barrier.wait();
                    let mut validated = 0u64;
                    while done.load(Ordering::Relaxed) == 0 || validated == 0 {
                        let va = a.load();
                        let vb = b.load();
                        // Identity DCAS: succeeds iff (va, vb) was an
                        // atomic snapshot.
                        if McasWord::dcas(a, b, va, vb, va, vb) {
                            assert_eq!(va + vb, TOTAL, "torn snapshot observed");
                            validated += 1;
                        }
                    }
                    assert!(validated > 0);
                });
            }
            // Scope: wait for movers by joining implicitly at scope end is
            // not possible before flagging, so flag from a watcher thread.
            s.spawn(|| {
                // The mover threads finish on their own; this watcher just
                // flips the flag once the sum is fully in motion. Sleep-free:
                // spin until both cells have been touched, then flag.
                while a.load() == TOTAL && b.load() == 0 {
                    std::thread::yield_now();
                }
                done.store(1, Ordering::Relaxed);
            });
        });
        assert_eq!(a.load() + b.load(), TOTAL);
    }

    #[test]
    fn overlapping_mcas_stress() {
        // Many threads rotate values around overlapping triples of cells;
        // the multiset of values must be preserved.
        const CELLS: usize = 8;
        const THREADS: usize = 6;
        const OPS: usize = 500;
        let cells: Vec<McasWord> = (0..CELLS as u64).map(McasWord::new).collect();
        let barrier = Barrier::new(THREADS);
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let (cells, barrier) = (&cells, &barrier);
                s.spawn(move || {
                    barrier.wait();
                    let mut rng = 0x9e3779b97f4a7c15u64.wrapping_mul(t as u64 + 1) | 1;
                    let mut next = || {
                        rng ^= rng << 13;
                        rng ^= rng >> 7;
                        rng ^= rng << 17;
                        rng
                    };
                    let mut done = 0;
                    while done < OPS {
                        let i = (next() % CELLS as u64) as usize;
                        let j = (next() % CELLS as u64) as usize;
                        let k = (next() % CELLS as u64) as usize;
                        if i == j || j == k || i == k {
                            continue;
                        }
                        let (vi, vj, vk) = (cells[i].load(), cells[j].load(), cells[k].load());
                        if McasWord::mcas(&[
                            McasOp {
                                cell: &cells[i],
                                old: vi,
                                new: vk,
                            },
                            McasOp {
                                cell: &cells[j],
                                old: vj,
                                new: vi,
                            },
                            McasOp {
                                cell: &cells[k],
                                old: vk,
                                new: vj,
                            },
                        ]) {
                            done += 1;
                        }
                    }
                });
            }
        });
        let mut values: Vec<u64> = cells.iter().map(|c| c.load()).collect();
        values.sort_unstable();
        assert_eq!(values, (0..CELLS as u64).collect::<Vec<_>>());
        crate::quiesce();
    }

    #[test]
    fn fetch_add_is_atomic() {
        const THREADS: usize = 8;
        const PER: usize = 1_000;
        let c = McasWord::new(0);
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let c = &c;
                s.spawn(move || {
                    for _ in 0..PER {
                        c.fetch_add(1);
                    }
                });
            }
        });
        assert_eq!(c.load(), (THREADS * PER) as u64);
    }

    #[test]
    fn fetch_add_negative() {
        let c = McasWord::new(10);
        assert_eq!(c.fetch_add(-3), 10);
        assert_eq!(c.load(), 7);
    }

    #[test]
    fn status_packing_roundtrip() {
        for seq in [0u64, 1, 42, SEQ_MASK] {
            for state in [UNDECIDED, SUCCEEDED, FAILED, CLAIMING] {
                let st = pack_status(seq, state);
                assert_eq!(status_seq(st), seq & SEQ_MASK);
                assert_eq!(status_state(st), state);
            }
        }
    }

    #[test]
    fn ablation_modes_have_identical_semantics() {
        for mode in [DescMode::Pooled, DescMode::Boxed] {
            desc::set_thread_desc_mode(Some(mode));
            let a = McasWord::new(1);
            let b = McasWord::new(2);
            assert!(McasWord::dcas(&a, &b, 1, 2, 10, 20));
            assert!(!McasWord::dcas(&a, &b, 1, 2, 0, 0));
            assert_eq!(a.load(), 10);
            assert_eq!(b.load(), 20);
            desc::set_thread_desc_mode(None);
        }
    }

    #[test]
    fn stale_immortal_word_is_abandoned_not_helped() {
        desc::set_thread_desc_mode(Some(DescMode::Immortal));
        let a = McasWord::new(0);
        let b = McasWord::new(0);
        assert!(McasWord::dcas(&a, &b, 0, 0, 1, 1));
        // The word op #1 published, captured across a full reuse cycle.
        let stale = test_support::thread_mcas_word();
        assert!(!test_support::seq_moved(stale));
        assert!(McasWord::dcas(&a, &b, 1, 1, 2, 2));
        assert!(test_support::seq_moved(stale));
        // Helping with the stale word must abandon and touch nothing.
        assert!(!test_support::validated_help(stale));
        assert_eq!(a.load(), 2);
        assert_eq!(b.load(), 2);
        desc::set_thread_desc_mode(None);
    }

    #[test]
    fn naive_stale_cas_corrupts_a_reused_slot_and_validation_does_not() {
        // Single-threaded model of the helper-race bug: while an
        // operation is in its published-but-undecided window, a stale
        // helper that skips sequence validation fails it spuriously. The
        // window is entered here by claiming without running help.
        desc::set_thread_desc_mode(Some(DescMode::Immortal));
        let a = McasWord::new(0);
        let b = McasWord::new(0);
        assert!(McasWord::dcas(&a, &b, 0, 0, 1, 1));
        let stale = test_support::thread_mcas_word();
        // Claim the slot for a new operation but do not decide it yet.
        let cells = [
            (&a.word as *const AtomicU64, encode(1), encode(2)),
            (&b.word as *const AtomicU64, encode(1), encode(2)),
        ];
        let entries: Vec<Entry> = cells
            .iter()
            .map(|&(cell, old, new)| Entry {
                cell,
                order: 0,
                old,
                new,
            })
            .collect();
        let seq = with_slots(|s| claim_mcas(s.mcas, &entries));
        // The validated path abandons the stale word...
        assert!(!test_support::validated_help(stale));
        let undecided = with_slots(|s| s.mcas.status.load(Ordering::SeqCst));
        assert_eq!(
            undecided,
            pack_status(seq, UNDECIDED),
            "validated help must not decide"
        );
        // ...while the naive path spuriously fails the new operation.
        assert!(test_support::naive_stale_status_cas(stale));
        let st = with_slots(|s| s.mcas.status.load(Ordering::SeqCst));
        assert_eq!(
            st,
            pack_status(seq, FAILED),
            "naive help corrupted the reused slot"
        );
        // Unwind the damage so the slot's next claim starts clean: the
        // claimed op never installed anything, so nothing to unlink.
        desc::set_thread_desc_mode(None);
    }

    #[test]
    fn immortal_attempts_do_not_allocate_or_defer() {
        desc::set_thread_desc_mode(Some(DescMode::Immortal));
        let a = McasWord::new(0);
        let b = McasWord::new(0);
        // Warm up: first touch materializes the thread's slots.
        assert!(McasWord::dcas(&a, &b, 0, 0, 1, 1));
        let reuse = lfrc_obs::counters::total(Counter::DescImmortalReuse);
        for i in 1..=64u64 {
            assert!(McasWord::dcas(&a, &b, i, i, i + 1, i + 1));
        }
        // Counters are process-global and other tests run concurrently,
        // so only a monotone lower bound is assertable here; the exact
        // zero-allocation/zero-deferral deltas live in tests/obs.rs
        // under its serial lock. Reuse fires at least once per attempt.
        if lfrc_obs::enabled() {
            assert!(
                lfrc_obs::counters::total(Counter::DescImmortalReuse) >= reuse + 64,
                "every immortal attempt must reuse the slot"
            );
        }
        desc::set_thread_desc_mode(None);
    }
}
