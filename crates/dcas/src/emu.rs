//! The emulator's private reclamation domain.
//!
//! Two kinds of memory must outlive their logical lifetime inside the
//! DCAS emulation:
//!
//! 1. **Operation descriptors** (MCAS/RDCSS): helpers may dereference a
//!    descriptor found in a cell after the owning operation finished.
//! 2. **User allocations containing cells**: a failing emulated DCAS (or a
//!    lagging helper) may still *read* a cell inside an object the
//!    algorithm has already freed — exactly the stray read hardware DCAS
//!    performs (see the crate docs).
//!
//! Both are retired into one process-wide epoch [`Collector`]
//! (`lfrc-reclaim`); every emulated operation runs inside a pin guard, so
//! retired memory is physically freed only once no in-flight operation can
//! touch it. None of this is visible to the LFRC algorithm above: it calls
//! "free" where the paper says, and never sees the object again.

use std::cell::OnceCell;
use std::sync::OnceLock;

use lfrc_reclaim::epoch::Guard;
use lfrc_reclaim::stats::StatsSnapshot;
use lfrc_reclaim::{Collector, LocalHandle};

fn collector() -> &'static Collector {
    static COLLECTOR: OnceLock<Collector> = OnceLock::new();
    COLLECTOR.get_or_init(Collector::new)
}

thread_local! {
    static HANDLE: OnceCell<LocalHandle> = const { OnceCell::new() };
}

/// Runs `f` with the calling thread pinned in the emulator's epoch.
///
/// Every cell operation of every strategy goes through this; nesting is
/// cheap (reentrant pinning).
///
/// Exposed publicly because a *composite* algorithm step sometimes needs
/// the pin to span several cell operations: the LFRC `load`, for example,
/// reads a pointer cell and then touches the referent's reference-count
/// cell — the referent may be logically freed in between, and only the
/// emulator's grace period keeps its memory mapped for the failing DCAS,
/// exactly as physical memory would remain mapped under hardware DCAS.
pub fn with_guard<R>(f: impl FnOnce(&Guard<'_>) -> R) -> R {
    HANDLE.with(|h| {
        let handle = h.get_or_init(|| collector().register());
        let guard = handle.pin();
        f(&guard)
    })
}

/// Defers physical deallocation of a `Box`-allocated object until no
/// in-flight emulated DCAS/MCAS can still read its cells.
///
/// Call this instead of `drop(Box::from_raw(ptr))` for **any** allocation
/// that contains [`DcasWord`](crate::DcasWord) cells. The object's `Drop`
/// implementation runs when the grace period expires.
///
/// # Safety
///
/// * `ptr` must come from [`Box::into_raw`] and be retired exactly once.
/// * The *algorithm* must no longer reach the object through live pointers
///   (for LFRC that is guaranteed: the reference count hit zero).
pub unsafe fn retire_box<T: Send + 'static>(ptr: *mut T) {
    with_guard(|guard| unsafe { guard.defer_destroy(ptr) });
}

/// Counters of the emulator's reclamation domain (descriptors + retired
/// user objects). Used by the memory experiments to report how much
/// physically-unreclaimed memory the emulation itself is holding.
pub fn emulation_stats() -> StatsSnapshot {
    collector().stats()
}

/// Drives the emulator's collector until everything currently eligible is
/// freed. Intended for tests and experiment teardown (call from a moment
/// when no other thread is mid-operation).
pub fn quiesce() {
    HANDLE.with(|h| {
        let handle = h.get_or_init(|| collector().register());
        handle.flush();
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn retire_box_defers_then_frees() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Noisy;
        impl Drop for Noisy {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let before = DROPS.load(Ordering::SeqCst);
        let p = Box::into_raw(Box::new(Noisy));
        unsafe { retire_box(p) };
        quiesce();
        assert_eq!(DROPS.load(Ordering::SeqCst), before + 1);
    }

    #[test]
    fn with_guard_is_reentrant() {
        with_guard(|_g1| {
            with_guard(|_g2| {
                // Nested pinning must not deadlock or panic.
            });
        });
    }
}
