//! The emulator's private reclamation domain.
//!
//! Two kinds of memory must outlive their logical lifetime inside the
//! DCAS emulation:
//!
//! 1. **Operation descriptors** (MCAS/RDCSS) in the `Pooled`/`Boxed`
//!    ablation modes: helpers may dereference a heap descriptor found in
//!    a cell after the owning operation finished. The default
//!    [`DescMode::Immortal`](crate::DescMode) path never retires
//!    descriptors at all — its slots live forever and helpers validate a
//!    packed sequence number instead (DESIGN.md §5.14) — so this epoch
//!    argument only carries the ablation modes.
//! 2. **User allocations containing cells**: a failing emulated DCAS (or a
//!    lagging helper) may still *read* a cell inside an object the
//!    algorithm has already freed — exactly the stray read hardware DCAS
//!    performs (see the crate docs).
//!
//! Both are retired into one process-wide epoch [`Collector`]
//! (`lfrc-reclaim`); every emulated operation runs inside a pin guard, so
//! retired memory is physically freed only once no in-flight operation can
//! touch it. None of this is visible to the LFRC algorithm above: it calls
//! "free" where the paper says, and never sees the object again.

use std::cell::OnceCell;
use std::sync::OnceLock;

use lfrc_reclaim::epoch::Guard;
use lfrc_reclaim::stats::StatsSnapshot;
use lfrc_reclaim::{Collector, LocalHandle};

fn collector() -> &'static Collector {
    static COLLECTOR: OnceLock<Collector> = OnceLock::new();
    COLLECTOR.get_or_init(|| {
        // The slab pool sits below this crate in the dependency graph, so
        // it cannot epoch-defer by itself; wire its retirement path to
        // this collector the first time anything pins. Every pool user
        // reaches a pin before any slab can possibly retire (slabs retire
        // on the free path, and frees are themselves epoch-deferred), so
        // registering here is early enough.
        lfrc_pool::set_retire_sink(pool_retire_sink);
        Collector::new()
    })
}

/// Retire sink for `lfrc-pool`: a fully-free slab's pages are unmapped
/// only after one further grace period, so an emulated operation that
/// still holds a stale slot pointer (the stray *read* hardware DCAS may
/// perform) keeps reading mapped memory.
unsafe fn pool_retire_sink(slab: *mut ()) {
    unsafe { retire_fn(slab, lfrc_pool::release_retired_slab) };
}

thread_local! {
    static HANDLE: OnceCell<LocalHandle> = const { OnceCell::new() };
}

/// Runs `f` with the calling thread pinned in the emulator's epoch.
///
/// Every cell operation of every strategy goes through this; nesting is
/// cheap (reentrant pinning).
///
/// Exposed publicly because a *composite* algorithm step sometimes needs
/// the pin to span several cell operations: the LFRC `load`, for example,
/// reads a pointer cell and then touches the referent's reference-count
/// cell — the referent may be logically freed in between, and only the
/// emulator's grace period keeps its memory mapped for the failing DCAS,
/// exactly as physical memory would remain mapped under hardware DCAS.
pub fn with_guard<R>(f: impl FnOnce(&Guard<'_>) -> R) -> R {
    // `Option` dance: the closure below runs at most once, but `try_with`
    // cannot prove that to the borrow checker.
    let mut f = Some(f);
    match HANDLE.try_with(|h| {
        let handle = h.get_or_init(|| collector().register());
        let guard = handle.pin();
        (f.take().unwrap())(&guard)
    }) {
        Ok(r) => r,
        // The thread-local handle is already destroyed: we are inside a
        // TLS destructor (a vacating thread draining its pool magazines
        // can retire a slab, whose deallocation is epoch-deferred from
        // right here). Registering a scratch handle is cheap — `register`
        // reuses vacated registry slots — and correctness only needs *a*
        // pin, not *this thread's* pin.
        Err(_) => {
            let handle = collector().register();
            let guard = handle.pin();
            (f.take().unwrap())(&guard)
        }
    }
}

/// Defers physical deallocation of a `Box`-allocated object until no
/// in-flight emulated DCAS/MCAS can still read its cells.
///
/// Call this instead of `drop(Box::from_raw(ptr))` for **any** allocation
/// that contains [`DcasWord`](crate::DcasWord) cells. The object's `Drop`
/// implementation runs when the grace period expires.
///
/// # Safety
///
/// * `ptr` must come from [`Box::into_raw`] and be retired exactly once.
/// * The *algorithm* must no longer reach the object through live pointers
///   (for LFRC that is guaranteed: the reference count hit zero).
pub unsafe fn retire_box<T: Send + 'static>(ptr: *mut T) {
    with_guard(|guard| unsafe { guard.defer_destroy(ptr) });
}

/// Defers `call(data)` until no in-flight emulated DCAS/MCAS (and no
/// pin-scoped `Borrowed` reader — they pin the same collector) can still
/// observe the memory `data` names. The non-allocating sibling of
/// [`retire_box`], used for pooled-slot releases where the deferred
/// action is "drop the value in place and hand the slot back to the
/// pool" rather than a `Box` drop.
///
/// # Safety
///
/// * `call(data)` must be safe to invoke exactly once, from any thread.
/// * The algorithm must no longer reach the memory through live pointers.
pub unsafe fn retire_fn(data: *mut (), call: unsafe fn(*mut ())) {
    with_guard(|guard| unsafe { guard.defer_fn(data, call) });
}

/// Counters of the emulator's reclamation domain (descriptors + retired
/// user objects). Used by the memory experiments to report how much
/// physically-unreclaimed memory the emulation itself is holding.
pub fn emulation_stats() -> StatsSnapshot {
    collector().stats()
}

/// Installs a veto on epoch advancement in the emulator's collector
/// (see [`Collector::set_advance_gate`]). `lfrc-core`'s deferred-increment
/// strategy registers its "no unsettled increments" predicate through
/// here; while the gate returns `false` the grace period cannot complete,
/// so no object covered by a pending increment can be freed. Installed at
/// most once per process; later calls are ignored.
pub fn set_advance_gate(gate: fn() -> bool) {
    collector().set_advance_gate(gate);
}

/// Drives the emulator's collector until everything currently eligible is
/// freed. Intended for tests and experiment teardown (call from a moment
/// when no other thread is mid-operation).
pub fn quiesce() {
    HANDLE.with(|h| {
        let handle = h.get_or_init(|| collector().register());
        handle.flush();
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn retire_box_defers_then_frees() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Noisy;
        impl Drop for Noisy {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let before = DROPS.load(Ordering::SeqCst);
        let p = Box::into_raw(Box::new(Noisy));
        unsafe { retire_box(p) };
        quiesce();
        assert_eq!(DROPS.load(Ordering::SeqCst), before + 1);
    }

    #[test]
    fn with_guard_is_reentrant() {
        with_guard(|_g1| {
            with_guard(|_g2| {
                // Nested pinning must not deadlock or panic.
            });
        });
    }
}
