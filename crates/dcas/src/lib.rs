//! Software emulation of the **DCAS** (double compare-and-swap) instruction
//! assumed by the PODC 2001 LFRC paper.
//!
//! The paper (§1) assumes "the availability of a double compare-and-swap
//! (DCAS) instruction that can atomically access two independently-chosen
//! memory locations", noting it "has been implemented in hardware in the
//! past (e.g. the Motorola 68020 `CAS2`)". No modern ISA provides it, so
//! this crate *builds* it, behind the [`DcasWord`] trait:
//!
//! * [`McasWord`] — the primary, **lock-free** strategy: Harris–Fraser
//!   style descriptor-based MCAS (RDCSS + MCAS descriptors with helping),
//!   specialized here to the word-sized cells LFRC needs. Any number of
//!   locations may be updated atomically; DCAS is the two-location case.
//! * [`LockWord`] — a striped-ordered-spinlock strategy, used as an
//!   ablation baseline (experiment E7) and as a differential-testing
//!   oracle for the MCAS strategy.
//!
//! # Cell discipline
//!
//! Exactly as the paper requires that "pointers are accessed only by means
//! of these operations", every word that may participate in a DCAS must
//! live in a [`DcasWord`] cell and be accessed only through the trait
//! methods. Cells store 62-bit payloads (see [`MAX_PAYLOAD`]); the two low
//! bits of the underlying machine word distinguish real values from
//! in-flight operation descriptors.
//!
//! # Deallocation discipline (`retire_box`)
//!
//! Hardware DCAS may *read* one of its two locations even when the other
//! comparison fails — the LFRC algorithm depends on this: `LFRCLoad`'s
//! DCAS touches the reference count of an object that may already have
//! been freed, relying on the failing pointer comparison to prevent the
//! *write*. On a real machine that stray read is harmless; in Rust it
//! would be undefined behaviour. The emulator therefore requires that any
//! allocation containing `DcasWord` cells is physically deallocated via
//! [`retire_box`], which defers the actual `free` until no in-flight
//! emulated operation can still touch it (an epoch-based grace period from
//! `lfrc-reclaim`). This is part of emulating the *hardware*, not of the
//! LFRC algorithm: the algorithm calls "free" at exactly the points the
//! paper says, and never observes a deferred object again.
//!
//! # Example
//!
//! ```
//! use lfrc_dcas::{DcasWord, McasWord};
//!
//! let a = McasWord::new(1);
//! let b = McasWord::new(2);
//! // Atomically swap the contents of two independently chosen cells.
//! assert!(McasWord::dcas(&a, &b, 1, 2, 2, 1));
//! assert_eq!(a.load(), 2);
//! assert_eq!(b.load(), 1);
//! // A stale expected value makes the whole operation fail.
//! assert!(!McasWord::dcas(&a, &b, 1, 2, 9, 9));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod desc;
pub mod emu;
pub mod llsc;
pub mod locked;
pub mod mcas;

// The yield-point instrumentation moved down to `lfrc-obs` (the bottom of
// the crate graph) so that `lfrc-pool` — which this crate allocates its
// descriptors from — can reach it without a dependency cycle. The
// historical paths (`lfrc_dcas::instrument::*`, `lfrc_dcas::InstrSite`)
// remain valid through this re-export.
pub use lfrc_obs::instrument;

pub use desc::{desc_mode, set_default_desc_mode, set_thread_desc_mode, DescMode};
pub use emu::{emulation_stats, quiesce, retire_box, retire_fn, set_advance_gate, with_guard};
pub use instrument::InstrSite;
pub use llsc::{Linked, LlScCell};
pub use locked::LockWord;
pub use mcas::McasWord;

/// Largest payload a [`DcasWord`] cell can store: cells reserve the two
/// low bits of the machine word for descriptor tagging, so payloads are
/// 62-bit. Pointers and reference counts fit comfortably.
pub const MAX_PAYLOAD: u64 = (1 << 62) - 1;

/// One location/expected/new triple of a multi-word CAS.
///
/// See [`DcasWord::mcas`].
#[derive(Debug, Clone, Copy)]
pub struct McasOp<'a, W> {
    /// The cell to update.
    pub cell: &'a W,
    /// Value the cell must currently hold.
    pub old: u64,
    /// Value to install if every comparison succeeds.
    pub new: u64,
}

/// A word-sized cell supporting single- and multi-location atomic updates
/// — the emulated "memory" of a machine with hardware DCAS.
///
/// All methods are linearizable with respect to each other. Implementors
/// guarantee that [`DcasWord::dcas`] (and the generalized
/// [`DcasWord::mcas`]) behaves exactly like the paper's DCAS: both
/// locations are compared and either both are updated or neither is.
///
/// Payloads must not exceed [`MAX_PAYLOAD`]; methods panic in debug builds
/// otherwise, so callers shift/clamp first. The LFRC layer stores pointers
/// (whose low bits are zero anyway) and small counters, both well within
/// range.
pub trait DcasWord: Send + Sync + Sized + 'static {
    /// Creates a cell holding `value`.
    fn new(value: u64) -> Self;

    /// Atomically reads the cell.
    fn load(&self) -> u64;

    /// Atomically overwrites the cell.
    fn store(&self, value: u64);

    /// Single-location compare-and-swap. Returns `true` iff the cell held
    /// `old` and now holds `new`.
    fn compare_and_swap(&self, old: u64, new: u64) -> bool;

    /// Atomically adds `delta` (which may be negative) to the cell,
    /// returning the *previous* value. Used for the paper's `add_to_rc`.
    fn fetch_add(&self, delta: i64) -> u64 {
        loop {
            let cur = self.load();
            let next = (cur as i64).wrapping_add(delta) as u64;
            if self.compare_and_swap(cur, next) {
                return cur;
            }
        }
    }

    /// Multi-location compare-and-swap over an arbitrary set of cells.
    ///
    /// Cells may be listed in any order; two entries must not target the
    /// same cell (debug-asserted).
    fn mcas(ops: &[McasOp<'_, Self>]) -> bool;

    /// The paper's DCAS: atomically compare `a` with `a_old` and `b` with
    /// `b_old`; if both match, set them to `a_new`/`b_new` and return
    /// `true`; otherwise change nothing and return `false`.
    fn dcas(a: &Self, b: &Self, a_old: u64, b_old: u64, a_new: u64, b_new: u64) -> bool {
        Self::mcas(&[
            McasOp {
                cell: a,
                old: a_old,
                new: a_new,
            },
            McasOp {
                cell: b,
                old: b_old,
                new: b_new,
            },
        ])
    }

    /// Short human-readable strategy name, used in benchmark tables.
    fn strategy_name() -> &'static str;
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    fn exercise<W: DcasWord>() {
        let a = W::new(10);
        let b = W::new(20);
        assert_eq!(a.load(), 10);
        a.store(11);
        assert_eq!(a.load(), 11);
        assert!(a.compare_and_swap(11, 12));
        assert!(!a.compare_and_swap(11, 13));
        assert_eq!(a.fetch_add(5), 12);
        assert_eq!(a.fetch_add(-7), 17);
        assert_eq!(a.load(), 10);
        assert!(W::dcas(&a, &b, 10, 20, 100, 200));
        assert!(!W::dcas(&a, &b, 10, 20, 0, 0));
        assert_eq!(a.load(), 100);
        assert_eq!(b.load(), 200);
        // A failed DCAS must leave *both* cells untouched even when one
        // comparison would have succeeded.
        assert!(!W::dcas(&a, &b, 100, 999, 1, 1));
        assert_eq!(a.load(), 100);
        assert_eq!(b.load(), 200);
    }

    #[test]
    fn mcas_word_semantics() {
        exercise::<McasWord>();
    }

    #[test]
    fn lock_word_semantics() {
        exercise::<LockWord>();
    }
}
