//! Descriptor lifetime modes for the MCAS emulation, and the word packing
//! used by the immortal mode.
//!
//! PR 4 took descriptor allocation off the global allocator (slab pool);
//! Arbel-Raviv & Brown's *Reuse, don't Recycle* (PPoPP 2017 / arXiv
//! 1708.01797) goes further: descriptors are **immortal**. Each thread
//! owns a fixed set of MCAS + RDCSS descriptor slots that are *never*
//! reclaimed; a slot is reused in place for every operation, carrying a
//! monotone **sequence number** bumped on each reuse. In-word descriptor
//! references are packed `(slot index, sequence)` instead of raw
//! pointers, so a helper that loads a stale word detects the reuse by
//! sequence mismatch and abandons instead of helping a recycled
//! operation. The MCAS hot path then does **zero allocation and zero
//! epoch deferral** — the write-side twin of the deferred-increment
//! read-side win (DESIGN.md §5.13). The full sequence-validation safety
//! argument is DESIGN.md §5.14.
//!
//! The previous lifetimes are kept for ablation (experiment E15):
//!
//! | mode       | storage             | reclamation    | helper validation |
//! |------------|---------------------|----------------|-------------------|
//! | `Immortal` | per-thread slots    | never          | sequence number   |
//! | `Pooled`   | slab pool           | epoch-deferred | epoch guarantee   |
//! | `Boxed`    | global allocator    | epoch-deferred | epoch guarantee   |
//!
//! Mode selection mirrors `lfrc_core::Strategy`: a process-global default
//! (settable once by benches via [`set_default_desc_mode`] /
//! [`DescMode::from_env`]) plus a thread-local override
//! ([`set_thread_desc_mode`]) so differential tests can run two modes in
//! one process without interfering with concurrently-running tests.

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};

/// How MCAS/RDCSS descriptors are stored, reclaimed, and validated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum DescMode {
    /// Per-thread immortal sequence-numbered slots (the primary mode):
    /// zero allocation, zero epoch deferral, helpers validate by seq.
    Immortal,
    /// Slab-pool allocation with epoch-deferred retirement (PR 4's
    /// design, kept for ablation).
    Pooled,
    /// Global-allocator `Box` with epoch-deferred retirement (the
    /// original design, kept for ablation).
    Boxed,
}

impl DescMode {
    /// Every mode, in preference order.
    pub const ALL: [DescMode; 3] = [DescMode::Immortal, DescMode::Pooled, DescMode::Boxed];

    /// Short stable name, used in env selection and benchmark tables.
    pub fn name(self) -> &'static str {
        match self {
            DescMode::Immortal => "immortal",
            DescMode::Pooled => "pooled",
            DescMode::Boxed => "boxed",
        }
    }

    /// Parses a mode name as produced by [`DescMode::name`].
    pub fn parse(s: &str) -> Option<DescMode> {
        DescMode::ALL.iter().copied().find(|m| m.name() == s)
    }

    /// Reads `LFRC_DESC_MODE` from the environment; unset means the
    /// default ([`DescMode::Immortal`]). Panics on a typo rather than
    /// silently benchmarking the wrong mode.
    pub fn from_env() -> DescMode {
        match std::env::var("LFRC_DESC_MODE") {
            Ok(s) => DescMode::parse(&s).unwrap_or_else(|| {
                panic!("LFRC_DESC_MODE={s:?} is not one of immortal|pooled|boxed")
            }),
            Err(_) => DescMode::Immortal,
        }
    }

    fn from_u8(v: u8) -> DescMode {
        match v {
            1 => DescMode::Pooled,
            2 => DescMode::Boxed,
            _ => DescMode::Immortal,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            DescMode::Immortal => 0,
            DescMode::Pooled => 1,
            DescMode::Boxed => 2,
        }
    }
}

impl fmt::Display for DescMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Process-global default mode (encoded via `DescMode::as_u8`).
static DEFAULT_MODE: AtomicU8 = AtomicU8::new(0);

thread_local! {
    /// Per-thread override: `u8::MAX` means "no override, use the
    /// global default".
    static THREAD_MODE: Cell<u8> = const { Cell::new(u8::MAX) };
}

/// Sets the process-global default descriptor mode. Intended for bench
/// mains (typically fed from [`DescMode::from_env`]); tests should prefer
/// the thread-local [`set_thread_desc_mode`] so parallel tests in one
/// binary cannot perturb each other.
pub fn set_default_desc_mode(mode: DescMode) {
    DEFAULT_MODE.store(mode.as_u8(), Ordering::Relaxed);
}

/// Sets (or with `None` clears) the calling thread's descriptor-mode
/// override. Scheduled differential tests call this at body start.
pub fn set_thread_desc_mode(mode: Option<DescMode>) {
    THREAD_MODE.with(|m| m.set(mode.map_or(u8::MAX, DescMode::as_u8)));
}

/// The descriptor mode in effect for the calling thread: its override if
/// set, else the process default. Tolerates TLS teardown (exit-path MCAS
/// traffic sees the global default).
#[inline]
pub fn desc_mode() -> DescMode {
    let v = THREAD_MODE.try_with(Cell::get).unwrap_or(u8::MAX);
    if v == u8::MAX {
        DescMode::from_u8(DEFAULT_MODE.load(Ordering::Relaxed))
    } else {
        DescMode::from_u8(v)
    }
}

// ---------------------------------------------------------------------------
// Immortal-descriptor word packing
// ---------------------------------------------------------------------------
//
// A Pooled/Boxed descriptor reference in a cell is a tagged raw pointer.
// An Immortal reference is self-describing instead:
//
// ```text
//  bit 63   bits 62..16        bits 15..2     bits 1..0
// ┌───────┬──────────────────┬──────────────┬───────────┐
// │   1   │ sequence (47 b)  │ slot (14 b)  │ tag       │
// └───────┴──────────────────┴──────────────┴───────────┘
// ```
//
// Bit 63 distinguishes the two encodings: user-space heap pointers never
// have the top bit set, so a helper can dispatch on it without knowing
// which mode produced the word. 14 slot bits bound the registry at 16384
// thread slots (each thread owns exactly one MCAS + one RDCSS slot under
// a shared index); 47 sequence bits roll over only after ~10^14 reuses
// of a single slot — and even a rollover collision requires the helper
// to have stalled across the *entire* wrap, in which case it would help
// an operation of identical seq whose status CAS is still seq-guarded.

/// Top bit marking a packed immortal descriptor word (as opposed to a
/// tagged raw pointer).
pub const IMMORTAL_BIT: u64 = 1 << 63;

/// Width of the slot-index field.
pub const SLOT_BITS: u32 = 14;

/// Maximum number of immortal descriptor slots (per kind) the registry
/// can hand out; claiming past this panics (it would mean 16k concurrent
/// threads, far past the pool's design point).
pub const MAX_SLOTS: usize = 1 << SLOT_BITS;

const SLOT_MASK: u64 = (MAX_SLOTS as u64 - 1) << 2;

/// Bit offset of the sequence field.
pub const SEQ_SHIFT: u32 = 2 + SLOT_BITS;

/// Mask of the (unshifted) 47-bit sequence field.
pub const SEQ_MASK: u64 = (1 << (63 - SEQ_SHIFT)) - 1;

/// Packs an immortal descriptor reference: slot index + sequence + the
/// 2-bit descriptor tag (`TAG_MCAS`/`TAG_RDCSS`).
#[inline]
pub fn pack(slot: usize, seq: u64, tag: u64) -> u64 {
    debug_assert!(slot < MAX_SLOTS);
    debug_assert!(tag <= 0b11);
    IMMORTAL_BIT | ((seq & SEQ_MASK) << SEQ_SHIFT) | ((slot as u64) << 2) | tag
}

/// Whether a descriptor-tagged word is an immortal reference (vs a raw
/// pointer from the Pooled/Boxed modes).
#[inline]
pub fn is_immortal(word: u64) -> bool {
    word & IMMORTAL_BIT != 0
}

/// The slot index of a packed immortal word.
#[inline]
pub fn unpack_slot(word: u64) -> usize {
    ((word & SLOT_MASK) >> 2) as usize
}

/// The (masked) sequence of a packed immortal word.
#[inline]
pub fn unpack_seq(word: u64) -> u64 {
    (word >> SEQ_SHIFT) & SEQ_MASK
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for m in DescMode::ALL {
            assert_eq!(DescMode::parse(m.name()), Some(m));
            assert_eq!(m.to_string(), m.name());
        }
        assert_eq!(DescMode::parse("nonsense"), None);
    }

    #[test]
    fn default_mode_is_immortal() {
        assert_eq!(
            DescMode::from_u8(DEFAULT_MODE.load(Ordering::Relaxed)),
            DescMode::Immortal
        );
    }

    #[test]
    fn thread_override_wins_and_clears() {
        set_thread_desc_mode(Some(DescMode::Pooled));
        assert_eq!(desc_mode(), DescMode::Pooled);
        set_thread_desc_mode(None);
        assert_eq!(desc_mode(), DescMode::Immortal);
    }

    #[test]
    fn pack_round_trips_and_is_tag_transparent() {
        for (slot, seq, tag) in [
            (0usize, 0u64, 0b01u64),
            (1, 1, 0b10),
            (MAX_SLOTS - 1, SEQ_MASK, 0b01),
            (7, 0xDEAD_BEEF, 0b10),
        ] {
            let w = pack(slot, seq, tag);
            assert!(is_immortal(w));
            assert_eq!(w & 0b11, tag, "low tag bits must survive packing");
            assert_eq!(unpack_slot(w), slot);
            assert_eq!(unpack_seq(w), seq & SEQ_MASK);
        }
        // A raw pointer (heap address) never has bit 63 set.
        let fake_ptr = 0x7fff_ffff_f000u64 | 0b01;
        assert!(!is_immortal(fake_ptr));
    }

    #[test]
    fn fields_do_not_overlap() {
        let w = pack(MAX_SLOTS - 1, SEQ_MASK, 0b11);
        assert_eq!(w, u64::MAX, "fields must tile the word exactly");
        assert_eq!(
            IMMORTAL_BIT | (SEQ_MASK << SEQ_SHIFT) | SLOT_MASK | 0b11,
            u64::MAX
        );
    }
}
