//! Emulated **load-linked / store-conditional** over DCAS cells.
//!
//! The paper (§2.1) notes: "it should be straightforward to extend our
//! methodology to support other operations such as load-linked and
//! store-conditional." This module supplies the substrate half of that
//! extension; `lfrc-core::ops::{load_linked, store_conditional}` builds
//! the counted half on top.
//!
//! Emulation: a [`LlScCell`] pairs a value cell with a version cell that
//! every write bumps. `ll` snapshots ⟨value, version⟩ consistently;
//! `sc` is a DCAS that replaces the value *and* bumps the version only
//! if the version is unchanged since the `ll` — so `sc` fails after
//! **any** intervening write, even an ABA one that restored the original
//! value. (That is the semantic gap between real LL/SC and CAS, and the
//! emulation preserves it; there are no spurious failures apart from
//! 62-bit version wraparound.)

use std::fmt;

use crate::DcasWord;

/// The token returned by [`LlScCell::ll`], consumed by [`LlScCell::sc`].
///
/// Tied to the cell by the borrow in `sc`; using a token from a
/// different cell is a logic error (the version spaces are independent,
/// so it simply fails).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Linked {
    /// The value observed by the `ll`.
    pub value: u64,
    version: u64,
}

impl Linked {
    /// The observed value (convenience accessor).
    pub fn value(&self) -> u64 {
        self.value
    }
}

/// A word cell supporting `ll`/`sc` in addition to the plain operations.
pub struct LlScCell<W: DcasWord> {
    value: W,
    version: W,
}

impl<W: DcasWord> fmt::Debug for LlScCell<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LlScCell")
            .field("value", &self.value.load())
            .field("version", &self.version.load())
            .finish()
    }
}

impl<W: DcasWord> LlScCell<W> {
    /// Creates a cell holding `value`.
    pub fn new(value: u64) -> Self {
        LlScCell {
            value: W::new(value),
            version: W::new(0),
        }
    }

    /// Plain atomic read.
    pub fn load(&self) -> u64 {
        self.value.load()
    }

    /// Plain atomic write (breaks all outstanding links).
    pub fn store(&self, value: u64) {
        loop {
            let link = self.ll();
            if self.sc(link, value) {
                return;
            }
        }
    }

    /// Load-linked: reads the value and opens a link.
    pub fn ll(&self) -> Linked {
        loop {
            let version = self.version.load();
            let value = self.value.load();
            // The snapshot is consistent iff the version did not move
            // between the two reads.
            if self.version.load() == version {
                return Linked { value, version };
            }
        }
    }

    /// Store-conditional: installs `new` iff no write (by any thread)
    /// has hit the cell since `link` was taken.
    pub fn sc(&self, link: Linked, new: u64) -> bool {
        W::dcas(
            &self.value,
            &self.version,
            link.value,
            link.version,
            new,
            link.version + 1,
        )
    }

    /// Validate: `true` iff the link is still unbroken.
    pub fn validate(&self, link: Linked) -> bool {
        self.version.load() == link.version
    }

    /// The underlying value cell (for mixed multi-word operations at the
    /// layer above; writes through it bypass the version and break the
    /// LL/SC contract, so it is read-only by convention).
    pub fn value_cell(&self) -> &W {
        &self.value
    }

    /// The underlying version cell (see [`LlScCell::value_cell`]).
    pub fn version_cell(&self) -> &W {
        &self.version
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::McasWord;
    use std::sync::Barrier;

    #[test]
    fn ll_sc_roundtrip() {
        let c: LlScCell<McasWord> = LlScCell::new(5);
        let link = c.ll();
        assert_eq!(link.value(), 5);
        assert!(c.validate(link));
        assert!(c.sc(link, 6));
        assert_eq!(c.load(), 6);
        // The old link is broken now.
        assert!(!c.validate(link));
        assert!(!c.sc(link, 7));
        assert_eq!(c.load(), 6);
    }

    #[test]
    fn sc_fails_after_aba() {
        // The property CAS cannot give: a value restored to the original
        // still breaks the link.
        let c: LlScCell<McasWord> = LlScCell::new(1);
        let link = c.ll();
        c.store(2);
        c.store(1); // ABA: value back to 1
        assert_eq!(c.load(), 1);
        assert!(!c.sc(link, 9), "sc must fail despite the value matching");
        assert_eq!(c.load(), 1);
    }

    #[test]
    fn exactly_one_sc_wins() {
        const THREADS: usize = 8;
        let c: LlScCell<McasWord> = LlScCell::new(0);
        let link = c.ll();
        let barrier = Barrier::new(THREADS);
        let mut wins = Vec::new();
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for t in 0..THREADS {
                let (c, barrier) = (&c, &barrier);
                handles.push(s.spawn(move || {
                    barrier.wait();
                    c.sc(link, t as u64 + 1)
                }));
            }
            for h in handles {
                wins.push(h.join().unwrap());
            }
        });
        assert_eq!(wins.iter().filter(|w| **w).count(), 1);
    }

    #[test]
    fn concurrent_increment_via_ll_sc() {
        const THREADS: usize = 4;
        const PER: u64 = 2_000;
        let c: LlScCell<McasWord> = LlScCell::new(0);
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let c = &c;
                s.spawn(move || {
                    for _ in 0..PER {
                        loop {
                            let link = c.ll();
                            if c.sc(link, link.value() + 1) {
                                break;
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(c.load(), THREADS as u64 * PER);
    }
}
