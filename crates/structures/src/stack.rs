//! Treiber stacks: GC-dependent (epoch-reclaimed) and LFRC-transformed.

use std::fmt;
use std::ptr;
use std::sync::atomic::{AtomicPtr, Ordering};

use lfrc_core::defer::{self, Borrowed};
use lfrc_core::{DcasWord, Heap, IncLocal, Links, Local, PtrField, SharedField, Strategy};
use lfrc_reclaim::{Collector, LocalHandle};

/// A concurrent LIFO stack of `u64` values.
pub trait ConcurrentStack: Send + Sync {
    /// Pushes a value.
    fn push(&self, value: u64);
    /// Pops the most recently pushed value, or `None` if empty.
    fn pop(&self) -> Option<u64>;
    /// Implementation label for benchmark tables.
    fn impl_name(&self) -> String;
}

// ---------------------------------------------------------------------------
// GC-dependent Treiber stack (native CAS + epoch reclamation)
// ---------------------------------------------------------------------------

struct GcNode {
    value: u64,
    next: *mut GcNode,
}

// Safety: nodes are immutable after publication and freed exactly once
// (by the epoch collector, possibly on another thread).
unsafe impl Send for GcNode {}

/// The classic Treiber stack, written as if a garbage collector existed —
/// no counts, no careful loads — and run on epoch-based reclamation.
///
/// A popped node is retired the moment it is unlinked; EBR provides the
/// paper's "GC gives us a free solution to the ABA problem" guarantee
/// (§1): the node cannot be reclaimed (hence its address cannot recur)
/// while any concurrent pop might still be comparing against it.
///
/// # Example
///
/// ```
/// use lfrc_structures::{ConcurrentStack, GcStack};
///
/// let s = GcStack::new();
/// s.push(1);
/// s.push(2);
/// assert_eq!(s.pop(), Some(2));
/// assert_eq!(s.pop(), Some(1));
/// assert_eq!(s.pop(), None);
/// ```
pub struct GcStack {
    head: AtomicPtr<GcNode>,
    collector: Collector,
}

impl fmt::Debug for GcStack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GcStack")
            .field("collector", &self.collector)
            .finish()
    }
}

impl Default for GcStack {
    fn default() -> Self {
        Self::new()
    }
}

thread_local! {
    /// Per-thread EBR handles, keyed by collector identity.
    static GC_HANDLES: std::cell::RefCell<Vec<LocalHandle>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Runs `f` with a pinned guard for `collector`, creating and caching a
/// thread-local handle on first use.
pub(crate) fn with_gc_guard<R>(
    collector: &Collector,
    f: impl FnOnce(&lfrc_reclaim::epoch::Guard<'_>) -> R,
) -> R {
    GC_HANDLES.with(|cell| {
        let mut handles = cell.borrow_mut();
        if !handles.iter().any(|h| h.collector().ptr_eq(collector)) {
            handles.push(collector.register());
        }
        let handle = handles
            .iter()
            .find(|h| h.collector().ptr_eq(collector))
            .expect("just ensured");
        let guard = handle.pin();
        f(&guard)
    })
}

/// Flushes the calling thread's cached handle for `collector` (if any),
/// then tries a global collection pass. Tests and experiment teardown use
/// this to drain garbage parked in the current thread's bag.
pub fn flush_thread(collector: &Collector) {
    GC_HANDLES.with(|cell| {
        let handles = cell.borrow();
        if let Some(h) = handles.iter().find(|h| h.collector().ptr_eq(collector)) {
            h.flush();
        }
    });
    let temp = collector.register();
    temp.flush();
}

impl GcStack {
    /// Creates an empty stack with its own collector.
    pub fn new() -> Self {
        GcStack {
            head: AtomicPtr::new(ptr::null_mut()),
            collector: Collector::new(),
        }
    }

    /// The stack's collector (for pending-garbage inspection in tests).
    pub fn collector(&self) -> &Collector {
        &self.collector
    }
}

impl ConcurrentStack for GcStack {
    fn push(&self, value: u64) {
        let node = Box::into_raw(Box::new(GcNode {
            value,
            next: ptr::null_mut(),
        }));
        loop {
            let head = self.head.load(Ordering::Acquire);
            // Safety: freshly allocated, not yet shared.
            unsafe { (*node).next = head };
            if self
                .head
                .compare_exchange(head, node, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return;
            }
        }
    }

    fn pop(&self) -> Option<u64> {
        with_gc_guard(&self.collector, |guard| loop {
            let head = self.head.load(Ordering::Acquire);
            if head.is_null() {
                return None;
            }
            // Safety: pinned — `head` cannot be reclaimed while we hold
            // the guard, even if another pop unlinks it first.
            let next = unsafe { (*head).next };
            if self
                .head
                .compare_exchange(head, next, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                // Safety: we unlinked `head`; it is ours to read & retire.
                let value = unsafe { (*head).value };
                unsafe { guard.defer_destroy(head) };
                return Some(value);
            }
        })
    }

    fn impl_name(&self) -> String {
        "stack-gc-ebr/native".to_owned()
    }
}

impl Drop for GcStack {
    fn drop(&mut self) {
        // Free whatever is still linked; retired nodes are handled by the
        // collector when it drops right after.
        let mut cur = *self.head.get_mut();
        while !cur.is_null() {
            // Safety: exclusive access during drop.
            let node = unsafe { Box::from_raw(cur) };
            cur = node.next;
        }
    }
}

// ---------------------------------------------------------------------------
// LFRC Treiber stack (methodology steps 1–6 applied)
// ---------------------------------------------------------------------------

/// An LFRC stack node: one link, one value.
pub struct LfrcStackNode<W: DcasWord> {
    value: u64,
    next: PtrField<LfrcStackNode<W>, W>,
}

impl<W: DcasWord> Links<W> for LfrcStackNode<W> {
    fn for_each_link(&self, f: &mut dyn FnMut(&PtrField<Self, W>)) {
        f(&self.next);
    }
}

impl<W: DcasWord> fmt::Debug for LfrcStackNode<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LfrcStackNode")
            .field("value", &self.value)
            .finish()
    }
}

/// The Treiber stack transformed by the LFRC methodology — fully
/// GC-independent, no freelist, memory returned to the allocator as soon
/// as counts drain.
///
/// Garbage is cycle-free by construction (popped nodes chain forward
/// through `next`), so step 3 of the methodology is free here.
///
/// # Example
///
/// ```
/// use lfrc_structures::{ConcurrentStack, LfrcStack};
/// use lfrc_core::McasWord;
///
/// let s: LfrcStack<McasWord> = LfrcStack::new();
/// s.push(1);
/// s.push(2);
/// assert_eq!(s.pop(), Some(2));
/// assert_eq!(s.pop(), Some(1));
/// assert_eq!(s.pop(), None);
/// ```
pub struct LfrcStack<W: DcasWord> {
    head: SharedField<LfrcStackNode<W>, W>,
    heap: Heap<LfrcStackNode<W>, W>,
    strategy: Strategy,
}

impl<W: DcasWord> fmt::Debug for LfrcStack<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LfrcStack")
            .field("census", self.heap.census())
            .finish()
    }
}

impl<W: DcasWord> Default for LfrcStack<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W: DcasWord> LfrcStack<W> {
    /// Creates an empty stack.
    pub fn new() -> Self {
        Self::with_backend(lfrc_core::Backend::default())
    }

    /// Creates an empty stack whose nodes come from the given allocation
    /// backend — `Pooled` (the default) or `Global`. Experiment E12
    /// benches the two against each other.
    pub fn with_backend(backend: lfrc_core::Backend) -> Self {
        Self::with_backend_and_strategy(backend, Strategy::default())
    }

    /// Creates an empty stack using the given counted-load
    /// [`Strategy`]. The choice is fixed for the instance's lifetime —
    /// the `DeferredInc` safety argument requires every displacing
    /// operation of the instance to grace-retire, so strategies never
    /// mix on one stack.
    pub fn with_strategy(strategy: Strategy) -> Self {
        Self::with_backend_and_strategy(lfrc_core::Backend::default(), strategy)
    }

    /// Creates an empty stack with both an explicit backend and an
    /// explicit counted-load strategy.
    pub fn with_backend_and_strategy(backend: lfrc_core::Backend, strategy: Strategy) -> Self {
        LfrcStack {
            head: SharedField::null(),
            heap: Heap::with_backend(backend),
            strategy,
        }
    }

    /// The heap (for census inspection).
    pub fn heap(&self) -> &Heap<LfrcStackNode<W>, W> {
        &self.heap
    }

    /// The counted-load strategy this instance was built with.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Paper-faithful push: every pointer read is `LFRCLoad`'s DCAS and
    /// every displaced count is released eagerly. Kept verbatim as the
    /// executable specification the differential harness compares the
    /// fast strategies against.
    fn push_dcas(&self, node: Local<LfrcStackNode<W>, W>) {
        loop {
            let head = self.head.load(); // LFRCLoad: DCAS-counted
            node.next.store(head.as_ref());
            if self.head.compare_and_set(head.as_ref(), Some(&node)) {
                return;
            }
        }
    }

    /// Paper-faithful pop (see [`LfrcStack::push_dcas`]).
    fn pop_dcas(&self) -> Option<u64> {
        loop {
            let Some(head) = self.head.load() else {
                return None; // empty
            };
            let value = head.value;
            let next = head.next.load();
            if self.head.compare_and_set(Some(&head), next.as_ref()) {
                return Some(value);
            }
        }
    }

    /// Deferred-decrement push (DESIGN.md §5.9) — the strategy the doc
    /// comment on [`ConcurrentStack::push`] describes.
    fn push_dec(&self, node: Local<LfrcStackNode<W>, W>) {
        defer::pinned(|pin| loop {
            let head = self.head.load_deferred(pin);
            match head.as_ref() {
                Some(h) => {
                    // Installing into our *own* unpublished node, but the
                    // installed reference must be counted — promote, and
                    // restart if the borrowed head died under us.
                    let Some(counted) = Borrowed::promote(h) else {
                        continue;
                    };
                    node.next.store_consume(counted);
                }
                None => node.next.store(None),
            }
            if self
                .head
                .compare_and_set_deferred(head.as_ref(), Some(&node))
            {
                // Success: the old head's location count is parked on the
                // decrement buffer; `node` drops (its count lives in the
                // head field now).
                return;
            }
        })
    }

    /// Deferred-decrement pop (DESIGN.md §5.9).
    fn pop_dec(&self) -> Option<u64> {
        defer::pinned(|pin| loop {
            let Some(head) = self.head.load_deferred(pin) else {
                return None; // empty
            };
            let value = head.value; // immutable; validated by the CAS
            let next = head.next.load(); // sound even if `head` died (see ops::load)
            if self
                .head
                .compare_and_set_deferred(Some(&head), next.as_ref())
            {
                // The popped node's count is parked, not destroyed: the
                // free (and any cascade) happens at the next flush.
                return Some(value);
            }
        })
    }

    /// Deferred-**increment** push (DESIGN.md §5.13): the head read is a
    /// plain load + TLS append, and taking the counted reference our
    /// node's `next` must own is a plain `fetch_add` — no DCAS and no
    /// CAS loop anywhere on the read side.
    fn push_inc(&self, node: Local<LfrcStackNode<W>, W>) {
        defer::pinned(|pin| loop {
            let head = self.head.load_counted_inc(pin);
            match head {
                Some(h) => {
                    // Keep a pending handle for the CAS expectation (a
                    // TLS append), then settle the loaded reference into
                    // our unpublished node's `next`.
                    let expected = h.clone();
                    node.next.store_consume(IncLocal::promote(h));
                    if self.head.compare_and_set_inc(Some(&expected), Some(&node)) {
                        // The displaced head unit is grace-retired inside
                        // `cas_inc` — the property every DeferredInc
                        // reader of this stack relies on.
                        return;
                    }
                    // Retry: `store_consume` above will eagerly release
                    // `next`'s stale reference. That release cannot be
                    // the last unit: the competing swap that beat us
                    // grace-retired the displaced head unit, and our pin
                    // (we pinned before reading the head) delays that
                    // decrement past this whole scope.
                }
                None => {
                    node.next.store(None);
                    if self.head.compare_and_set_inc(None, Some(&node)) {
                        return;
                    }
                }
            }
        })
    }

    /// Deferred-increment pop (DESIGN.md §5.13). No rc validation and no
    /// promote-failure path: every object loaded inside the pin is alive
    /// for the whole pin (the cover-unit argument in `lfrc_core::inc`).
    fn pop_inc(&self) -> Option<u64> {
        defer::pinned(|pin| loop {
            let Some(head) = self.head.load_counted_inc(pin) else {
                return None; // empty
            };
            let value = head.value; // alive for the whole pin
                                    // `head` cannot be harvested while we are pinned, so its
                                    // `next` is a genuine link; promote materializes the +1 the
                                    // head field will own if our CAS wins.
            let next = head.next.load_counted_inc(pin).map(IncLocal::promote);
            if self.head.compare_and_set_inc(Some(&head), next.as_ref()) {
                // The popped node's unit is grace-retired by `cas_inc`.
                return Some(value);
            }
            // Retry: dropping `next` releases its +1 eagerly, which is
            // safe — the old head's field unit on `next` outlives our pin
            // (its release is grace-deferred), so the count stays ≥ 1.
        })
    }
}

impl<W: DcasWord> ConcurrentStack for LfrcStack<W> {
    /// Dispatches on the instance's [`Strategy`]. The default,
    /// `DeferredDec`, is the §5.9 fast path: the head is read with a
    /// plain load instead of `LFRCLoad`'s DCAS, and the only count taken
    /// per attempt is the promote that our fresh node's `next` must own.
    /// `Dcas` is the paper-faithful reference; `DeferredInc` (§5.13)
    /// removes the promote CAS as well.
    fn push(&self, value: u64) {
        let node = self.heap.alloc(LfrcStackNode {
            value,
            next: PtrField::null(),
        });
        match self.strategy {
            Strategy::Dcas => self.push_dcas(node),
            Strategy::DeferredDec => self.push_dec(node),
            Strategy::DeferredInc => self.push_inc(node),
        }
    }

    /// Dispatches on the instance's [`Strategy`]. Under `DeferredDec`:
    /// one plain load + one counted `next` load + one CAS — versus three
    /// DCAS rounds for `Dcas`. No rc validation is needed: the CAS can
    /// only succeed while the head field still holds `head`, and a
    /// field's own count keeps its referent alive, so success proves
    /// every prior read (immutable `value`, publication-frozen `next`)
    /// saw a live node. `DeferredInc` drops the remaining DCAS too.
    fn pop(&self) -> Option<u64> {
        match self.strategy {
            Strategy::Dcas => self.pop_dcas(),
            Strategy::DeferredDec => self.pop_dec(),
            Strategy::DeferredInc => self.pop_inc(),
        }
    }

    fn impl_name(&self) -> String {
        format!("stack-lfrc/{}/{}", W::strategy_name(), self.strategy.name())
    }
}

// `head: SharedField` nulls itself on drop, cascading the whole chain —
// a stack's links are acyclic, so no explicit pop-out loop is needed
// (contrast with Snark's destructor, paper lines 40–44).

#[cfg(test)]
mod tests {
    use super::*;
    use lfrc_core::McasWord;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Barrier;

    fn exercise_sequential<S: ConcurrentStack>(s: &S) {
        assert_eq!(s.pop(), None);
        for v in 1..=10 {
            s.push(v);
        }
        for v in (1..=10).rev() {
            assert_eq!(s.pop(), Some(v));
        }
        assert_eq!(s.pop(), None);
    }

    fn exercise_concurrent<S: ConcurrentStack>(s: &S, threads: usize, per: u64) {
        let sum = AtomicU64::new(0);
        let count = AtomicU64::new(0);
        let barrier = Barrier::new(threads * 2);
        std::thread::scope(|scope| {
            for t in 0..threads {
                let (s, barrier) = (&*s, &barrier);
                scope.spawn(move || {
                    barrier.wait();
                    for i in 0..per {
                        s.push(t as u64 * per + i + 1);
                    }
                    // Explicit: `scope` can return before this thread's
                    // TLS-destructor flush runs, racing the census read.
                    // Settle first so a (never-expected) increment residue
                    // cannot hold the advance gate closed either.
                    lfrc_core::settle_thread();
                    lfrc_core::defer::flush_thread();
                });
            }
            for _ in 0..threads {
                let (s, barrier, sum, count) = (&*s, &barrier, &sum, &count);
                scope.spawn(move || {
                    barrier.wait();
                    let mut got = 0;
                    let mut idle = 0u32;
                    while got < per && idle < 1_000_000 {
                        match s.pop() {
                            Some(v) => {
                                sum.fetch_add(v, Ordering::Relaxed);
                                count.fetch_add(1, Ordering::Relaxed);
                                got += 1;
                                idle = 0;
                            }
                            None => {
                                idle += 1;
                                std::thread::yield_now();
                            }
                        }
                    }
                    lfrc_core::settle_thread();
                    lfrc_core::defer::flush_thread();
                });
            }
        });
        while let Some(v) = s.pop() {
            sum.fetch_add(v, Ordering::Relaxed);
            count.fetch_add(1, Ordering::Relaxed);
        }
        let n = threads as u64 * per;
        assert_eq!(count.load(Ordering::Relaxed), n);
        assert_eq!(sum.load(Ordering::Relaxed), n * (n + 1) / 2);
    }

    #[test]
    fn gc_stack_sequential() {
        exercise_sequential(&GcStack::new());
    }

    #[test]
    fn lfrc_stack_sequential() {
        let s: LfrcStack<McasWord> = LfrcStack::new();
        exercise_sequential(&s);
    }

    #[test]
    fn gc_stack_concurrent() {
        exercise_concurrent(&GcStack::new(), 4, 3_000);
    }

    #[test]
    fn lfrc_stack_concurrent() {
        let s: LfrcStack<McasWord> = LfrcStack::new();
        let census = std::sync::Arc::clone(s.heap().census());
        exercise_concurrent(&s, 4, 3_000);
        drop(s);
        // Worker threads flushed their decrement buffers on exit; the
        // main thread (which drained the stack) flushes explicitly.
        lfrc_core::defer::flush_thread();
        assert_eq!(census.live(), 0, "LFRC stack leaked nodes");
    }

    /// Drives the collector until the census drains (grace-retired units
    /// under `Strategy::DeferredInc` release their decrements only after
    /// epoch advances), with a bound so a regression fails instead of
    /// hanging.
    #[track_caller]
    fn assert_census_drains(census: &lfrc_core::Census) {
        let t0 = std::time::Instant::now();
        while census.live() != 0 && t0.elapsed() < std::time::Duration::from_secs(10) {
            lfrc_core::defer::flush_thread();
            lfrc_dcas::quiesce();
            std::thread::yield_now();
        }
        assert_eq!(census.live(), 0, "census did not drain");
    }

    #[test]
    fn lfrc_stack_every_strategy_sequential() {
        for strategy in Strategy::ALL {
            let s: LfrcStack<McasWord> = LfrcStack::with_strategy(strategy);
            assert_eq!(s.strategy(), strategy);
            assert!(
                s.impl_name().ends_with(strategy.name()),
                "{}",
                s.impl_name()
            );
            exercise_sequential(&s);
            let census = std::sync::Arc::clone(s.heap().census());
            drop(s);
            assert_census_drains(&census);
        }
    }

    #[test]
    fn lfrc_stack_deferred_inc_concurrent() {
        let s: LfrcStack<McasWord> = LfrcStack::with_strategy(Strategy::DeferredInc);
        let census = std::sync::Arc::clone(s.heap().census());
        exercise_concurrent(&s, 4, 3_000);
        drop(s);
        assert_census_drains(&census);
    }

    #[test]
    fn lfrc_stack_dcas_strategy_concurrent() {
        let s: LfrcStack<McasWord> = LfrcStack::with_strategy(Strategy::Dcas);
        let census = std::sync::Arc::clone(s.heap().census());
        exercise_concurrent(&s, 2, 500); // eager DCAS path is slow; keep it small
        drop(s);
        assert_census_drains(&census);
    }

    #[test]
    fn lfrc_stack_memory_shrinks_between_bursts() {
        // The paper's headline property (§1): consumption can "grow and
        // shrink over time" with no freelist.
        let s: LfrcStack<McasWord> = LfrcStack::new();
        for burst in 0..5 {
            for v in 0..1_000 {
                s.push(v);
            }
            assert_eq!(s.heap().census().live(), 1_000, "burst {burst}");
            while s.pop().is_some() {}
            // Popped counts are parked on the decrement buffer; memory
            // shrinks at the flush (bounded by FLUSH_THRESHOLD).
            lfrc_core::defer::flush_thread();
            assert_eq!(s.heap().census().live(), 0, "burst {burst}: did not shrink");
        }
    }

    #[test]
    fn gc_stack_drop_frees_remaining() {
        let s = GcStack::new();
        for v in 0..100 {
            s.push(v);
        }
        s.pop();
        drop(s); // must not leak (asan-less smoke: just exercise the path)
    }

    #[test]
    fn lfrc_stack_drop_cascades_chain() {
        let s: LfrcStack<McasWord> = LfrcStack::new();
        let census = std::sync::Arc::clone(s.heap().census());
        for v in 0..10_000 {
            s.push(v);
        }
        drop(s); // 10k-deep cascade must not overflow the thread stack
        lfrc_core::defer::flush_thread(); // release push-parked units
        assert_eq!(census.live(), 0);
    }
}
