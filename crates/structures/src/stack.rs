//! Treiber stacks: GC-dependent (epoch-reclaimed) and LFRC-transformed.

use std::fmt;
use std::ptr;
use std::sync::atomic::{AtomicPtr, Ordering};

use lfrc_core::defer::{self, Borrowed};
use lfrc_core::{DcasWord, Heap, Links, PtrField, SharedField};
use lfrc_reclaim::{Collector, LocalHandle};

/// A concurrent LIFO stack of `u64` values.
pub trait ConcurrentStack: Send + Sync {
    /// Pushes a value.
    fn push(&self, value: u64);
    /// Pops the most recently pushed value, or `None` if empty.
    fn pop(&self) -> Option<u64>;
    /// Implementation label for benchmark tables.
    fn impl_name(&self) -> String;
}

// ---------------------------------------------------------------------------
// GC-dependent Treiber stack (native CAS + epoch reclamation)
// ---------------------------------------------------------------------------

struct GcNode {
    value: u64,
    next: *mut GcNode,
}

// Safety: nodes are immutable after publication and freed exactly once
// (by the epoch collector, possibly on another thread).
unsafe impl Send for GcNode {}

/// The classic Treiber stack, written as if a garbage collector existed —
/// no counts, no careful loads — and run on epoch-based reclamation.
///
/// A popped node is retired the moment it is unlinked; EBR provides the
/// paper's "GC gives us a free solution to the ABA problem" guarantee
/// (§1): the node cannot be reclaimed (hence its address cannot recur)
/// while any concurrent pop might still be comparing against it.
///
/// # Example
///
/// ```
/// use lfrc_structures::{ConcurrentStack, GcStack};
///
/// let s = GcStack::new();
/// s.push(1);
/// s.push(2);
/// assert_eq!(s.pop(), Some(2));
/// assert_eq!(s.pop(), Some(1));
/// assert_eq!(s.pop(), None);
/// ```
pub struct GcStack {
    head: AtomicPtr<GcNode>,
    collector: Collector,
}

impl fmt::Debug for GcStack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GcStack")
            .field("collector", &self.collector)
            .finish()
    }
}

impl Default for GcStack {
    fn default() -> Self {
        Self::new()
    }
}

thread_local! {
    /// Per-thread EBR handles, keyed by collector identity.
    static GC_HANDLES: std::cell::RefCell<Vec<LocalHandle>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Runs `f` with a pinned guard for `collector`, creating and caching a
/// thread-local handle on first use.
pub(crate) fn with_gc_guard<R>(
    collector: &Collector,
    f: impl FnOnce(&lfrc_reclaim::epoch::Guard<'_>) -> R,
) -> R {
    GC_HANDLES.with(|cell| {
        let mut handles = cell.borrow_mut();
        if !handles.iter().any(|h| h.collector().ptr_eq(collector)) {
            handles.push(collector.register());
        }
        let handle = handles
            .iter()
            .find(|h| h.collector().ptr_eq(collector))
            .expect("just ensured");
        let guard = handle.pin();
        f(&guard)
    })
}

/// Flushes the calling thread's cached handle for `collector` (if any),
/// then tries a global collection pass. Tests and experiment teardown use
/// this to drain garbage parked in the current thread's bag.
pub fn flush_thread(collector: &Collector) {
    GC_HANDLES.with(|cell| {
        let handles = cell.borrow();
        if let Some(h) = handles.iter().find(|h| h.collector().ptr_eq(collector)) {
            h.flush();
        }
    });
    let temp = collector.register();
    temp.flush();
}

impl GcStack {
    /// Creates an empty stack with its own collector.
    pub fn new() -> Self {
        GcStack {
            head: AtomicPtr::new(ptr::null_mut()),
            collector: Collector::new(),
        }
    }

    /// The stack's collector (for pending-garbage inspection in tests).
    pub fn collector(&self) -> &Collector {
        &self.collector
    }
}

impl ConcurrentStack for GcStack {
    fn push(&self, value: u64) {
        let node = Box::into_raw(Box::new(GcNode {
            value,
            next: ptr::null_mut(),
        }));
        loop {
            let head = self.head.load(Ordering::Acquire);
            // Safety: freshly allocated, not yet shared.
            unsafe { (*node).next = head };
            if self
                .head
                .compare_exchange(head, node, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return;
            }
        }
    }

    fn pop(&self) -> Option<u64> {
        with_gc_guard(&self.collector, |guard| loop {
            let head = self.head.load(Ordering::Acquire);
            if head.is_null() {
                return None;
            }
            // Safety: pinned — `head` cannot be reclaimed while we hold
            // the guard, even if another pop unlinks it first.
            let next = unsafe { (*head).next };
            if self
                .head
                .compare_exchange(head, next, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                // Safety: we unlinked `head`; it is ours to read & retire.
                let value = unsafe { (*head).value };
                unsafe { guard.defer_destroy(head) };
                return Some(value);
            }
        })
    }

    fn impl_name(&self) -> String {
        "stack-gc-ebr/native".to_owned()
    }
}

impl Drop for GcStack {
    fn drop(&mut self) {
        // Free whatever is still linked; retired nodes are handled by the
        // collector when it drops right after.
        let mut cur = *self.head.get_mut();
        while !cur.is_null() {
            // Safety: exclusive access during drop.
            let node = unsafe { Box::from_raw(cur) };
            cur = node.next;
        }
    }
}

// ---------------------------------------------------------------------------
// LFRC Treiber stack (methodology steps 1–6 applied)
// ---------------------------------------------------------------------------

/// An LFRC stack node: one link, one value.
pub struct LfrcStackNode<W: DcasWord> {
    value: u64,
    next: PtrField<LfrcStackNode<W>, W>,
}

impl<W: DcasWord> Links<W> for LfrcStackNode<W> {
    fn for_each_link(&self, f: &mut dyn FnMut(&PtrField<Self, W>)) {
        f(&self.next);
    }
}

impl<W: DcasWord> fmt::Debug for LfrcStackNode<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LfrcStackNode")
            .field("value", &self.value)
            .finish()
    }
}

/// The Treiber stack transformed by the LFRC methodology — fully
/// GC-independent, no freelist, memory returned to the allocator as soon
/// as counts drain.
///
/// Garbage is cycle-free by construction (popped nodes chain forward
/// through `next`), so step 3 of the methodology is free here.
///
/// # Example
///
/// ```
/// use lfrc_structures::{ConcurrentStack, LfrcStack};
/// use lfrc_core::McasWord;
///
/// let s: LfrcStack<McasWord> = LfrcStack::new();
/// s.push(1);
/// s.push(2);
/// assert_eq!(s.pop(), Some(2));
/// assert_eq!(s.pop(), Some(1));
/// assert_eq!(s.pop(), None);
/// ```
pub struct LfrcStack<W: DcasWord> {
    head: SharedField<LfrcStackNode<W>, W>,
    heap: Heap<LfrcStackNode<W>, W>,
}

impl<W: DcasWord> fmt::Debug for LfrcStack<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LfrcStack")
            .field("census", self.heap.census())
            .finish()
    }
}

impl<W: DcasWord> Default for LfrcStack<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W: DcasWord> LfrcStack<W> {
    /// Creates an empty stack.
    pub fn new() -> Self {
        Self::with_backend(lfrc_core::Backend::default())
    }

    /// Creates an empty stack whose nodes come from the given allocation
    /// backend — `Pooled` (the default) or `Global`. Experiment E12
    /// benches the two against each other.
    pub fn with_backend(backend: lfrc_core::Backend) -> Self {
        LfrcStack {
            head: SharedField::null(),
            heap: Heap::with_backend(backend),
        }
    }

    /// The heap (for census inspection).
    pub fn heap(&self) -> &Heap<LfrcStackNode<W>, W> {
        &self.heap
    }
}

impl<W: DcasWord> ConcurrentStack for LfrcStack<W> {
    /// Deferred fast path (DESIGN.md §5.9): the head is read with a plain
    /// load instead of `LFRCLoad`'s DCAS; the only count taken per
    /// attempt is the promote that our fresh node's `next` must own.
    fn push(&self, value: u64) {
        let node = self.heap.alloc(LfrcStackNode {
            value,
            next: PtrField::null(),
        });
        defer::pinned(|pin| loop {
            let head = self.head.load_deferred(pin);
            match head.as_ref() {
                Some(h) => {
                    // Installing into our *own* unpublished node, but the
                    // installed reference must be counted — promote, and
                    // restart if the borrowed head died under us.
                    let Some(counted) = Borrowed::promote(h) else {
                        continue;
                    };
                    node.next.store_consume(counted);
                }
                None => node.next.store(None),
            }
            if self
                .head
                .compare_and_set_deferred(head.as_ref(), Some(&node))
            {
                // Success: the old head's location count is parked on the
                // decrement buffer; `node` drops (its count lives in the
                // head field now).
                return;
            }
        })
    }

    /// Deferred fast path: one plain load + one counted `next` load + one
    /// CAS — versus three DCAS rounds for the eager version. No rc
    /// validation is needed: the CAS can only succeed while the head
    /// field still holds `head`, and a field's own count keeps its
    /// referent alive, so success proves every prior read (immutable
    /// `value`, publication-frozen `next`) saw a live node.
    fn pop(&self) -> Option<u64> {
        defer::pinned(|pin| loop {
            let Some(head) = self.head.load_deferred(pin) else {
                return None; // empty
            };
            let value = head.value; // immutable; validated by the CAS
            let next = head.next.load(); // sound even if `head` died (see ops::load)
            if self
                .head
                .compare_and_set_deferred(Some(&head), next.as_ref())
            {
                // The popped node's count is parked, not destroyed: the
                // free (and any cascade) happens at the next flush.
                return Some(value);
            }
        })
    }

    fn impl_name(&self) -> String {
        format!("stack-lfrc/{}", W::strategy_name())
    }
}

// `head: SharedField` nulls itself on drop, cascading the whole chain —
// a stack's links are acyclic, so no explicit pop-out loop is needed
// (contrast with Snark's destructor, paper lines 40–44).

#[cfg(test)]
mod tests {
    use super::*;
    use lfrc_core::McasWord;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Barrier;

    fn exercise_sequential<S: ConcurrentStack>(s: &S) {
        assert_eq!(s.pop(), None);
        for v in 1..=10 {
            s.push(v);
        }
        for v in (1..=10).rev() {
            assert_eq!(s.pop(), Some(v));
        }
        assert_eq!(s.pop(), None);
    }

    fn exercise_concurrent<S: ConcurrentStack>(s: &S, threads: usize, per: u64) {
        let sum = AtomicU64::new(0);
        let count = AtomicU64::new(0);
        let barrier = Barrier::new(threads * 2);
        std::thread::scope(|scope| {
            for t in 0..threads {
                let (s, barrier) = (&*s, &barrier);
                scope.spawn(move || {
                    barrier.wait();
                    for i in 0..per {
                        s.push(t as u64 * per + i + 1);
                    }
                    // Explicit: `scope` can return before this thread's
                    // TLS-destructor flush runs, racing the census read.
                    lfrc_core::defer::flush_thread();
                });
            }
            for _ in 0..threads {
                let (s, barrier, sum, count) = (&*s, &barrier, &sum, &count);
                scope.spawn(move || {
                    barrier.wait();
                    let mut got = 0;
                    let mut idle = 0u32;
                    while got < per && idle < 1_000_000 {
                        match s.pop() {
                            Some(v) => {
                                sum.fetch_add(v, Ordering::Relaxed);
                                count.fetch_add(1, Ordering::Relaxed);
                                got += 1;
                                idle = 0;
                            }
                            None => {
                                idle += 1;
                                std::thread::yield_now();
                            }
                        }
                    }
                    lfrc_core::defer::flush_thread();
                });
            }
        });
        while let Some(v) = s.pop() {
            sum.fetch_add(v, Ordering::Relaxed);
            count.fetch_add(1, Ordering::Relaxed);
        }
        let n = threads as u64 * per;
        assert_eq!(count.load(Ordering::Relaxed), n);
        assert_eq!(sum.load(Ordering::Relaxed), n * (n + 1) / 2);
    }

    #[test]
    fn gc_stack_sequential() {
        exercise_sequential(&GcStack::new());
    }

    #[test]
    fn lfrc_stack_sequential() {
        let s: LfrcStack<McasWord> = LfrcStack::new();
        exercise_sequential(&s);
    }

    #[test]
    fn gc_stack_concurrent() {
        exercise_concurrent(&GcStack::new(), 4, 3_000);
    }

    #[test]
    fn lfrc_stack_concurrent() {
        let s: LfrcStack<McasWord> = LfrcStack::new();
        let census = std::sync::Arc::clone(s.heap().census());
        exercise_concurrent(&s, 4, 3_000);
        drop(s);
        // Worker threads flushed their decrement buffers on exit; the
        // main thread (which drained the stack) flushes explicitly.
        lfrc_core::defer::flush_thread();
        assert_eq!(census.live(), 0, "LFRC stack leaked nodes");
    }

    #[test]
    fn lfrc_stack_memory_shrinks_between_bursts() {
        // The paper's headline property (§1): consumption can "grow and
        // shrink over time" with no freelist.
        let s: LfrcStack<McasWord> = LfrcStack::new();
        for burst in 0..5 {
            for v in 0..1_000 {
                s.push(v);
            }
            assert_eq!(s.heap().census().live(), 1_000, "burst {burst}");
            while s.pop().is_some() {}
            // Popped counts are parked on the decrement buffer; memory
            // shrinks at the flush (bounded by FLUSH_THRESHOLD).
            lfrc_core::defer::flush_thread();
            assert_eq!(s.heap().census().live(), 0, "burst {burst}: did not shrink");
        }
    }

    #[test]
    fn gc_stack_drop_frees_remaining() {
        let s = GcStack::new();
        for v in 0..100 {
            s.push(v);
        }
        s.pop();
        drop(s); // must not leak (asan-less smoke: just exercise the path)
    }

    #[test]
    fn lfrc_stack_drop_cascades_chain() {
        let s: LfrcStack<McasWord> = LfrcStack::new();
        let census = std::sync::Arc::clone(s.heap().census());
        for v in 0..10_000 {
            s.push(v);
        }
        drop(s); // 10k-deep cascade must not overflow the thread stack
        lfrc_core::defer::flush_thread(); // release push-parked units
        assert_eq!(census.live(), 0);
    }
}
