//! A Treiber stack driven by **counted LL/SC** instead of CAS.
//!
//! Demonstrates the paper's §2.1 extension
//! ([`LinkedPtrField`]) inside a real
//! structure. Algorithmically this is the textbook LL/SC stack: push and
//! pop link the head, prepare, and store-conditionally commit. Two
//! properties are worth noticing:
//!
//! * the SC fails after *any* interleaved head write — pop needs no ABA
//!   reasoning at all, not even the (already sufficient) protection LFRC
//!   counting provides;
//! * counting is exactly the `LFRCDCAS` discipline: the SC's speculative
//!   increment is compensated on failure, and the displaced reference is
//!   released on success — all inside
//!   [`LinkedPtrField::store_conditional`].

use std::fmt;

use lfrc_core::{DcasWord, Heap, LinkedPtrField, Links, PtrField};

use crate::stack::ConcurrentStack;

/// Node of the LL/SC stack.
pub struct LlscStackNode<W: DcasWord> {
    value: u64,
    next: PtrField<LlscStackNode<W>, W>,
}

impl<W: DcasWord> Links<W> for LlscStackNode<W> {
    fn for_each_link(&self, f: &mut dyn FnMut(&PtrField<Self, W>)) {
        f(&self.next);
    }
}

impl<W: DcasWord> fmt::Debug for LlscStackNode<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LlscStackNode")
            .field("value", &self.value)
            .finish()
    }
}

/// A Treiber stack whose head is a counted LL/SC location.
///
/// # Example
///
/// ```
/// use lfrc_structures::{ConcurrentStack, LlscStack};
/// use lfrc_core::McasWord;
///
/// let s: LlscStack<McasWord> = LlscStack::new();
/// s.push(1);
/// s.push(2);
/// assert_eq!(s.pop(), Some(2));
/// assert_eq!(s.pop(), Some(1));
/// assert_eq!(s.pop(), None);
/// ```
pub struct LlscStack<W: DcasWord> {
    head: LinkedPtrField<LlscStackNode<W>, W>,
    heap: Heap<LlscStackNode<W>, W>,
}

impl<W: DcasWord> fmt::Debug for LlscStack<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LlscStack")
            .field("census", self.heap.census())
            .finish()
    }
}

impl<W: DcasWord> Default for LlscStack<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W: DcasWord> LlscStack<W> {
    /// Creates an empty stack.
    pub fn new() -> Self {
        LlscStack {
            head: LinkedPtrField::null(),
            heap: Heap::new(),
        }
    }

    /// The heap (census inspection).
    pub fn heap(&self) -> &Heap<LlscStackNode<W>, W> {
        &self.heap
    }
}

impl<W: DcasWord> ConcurrentStack for LlscStack<W> {
    fn push(&self, value: u64) {
        let node = self.heap.alloc(LlscStackNode {
            value,
            next: PtrField::null(),
        });
        loop {
            let (cur, link) = self.head.load_linked();
            node.next.store(cur.as_ref());
            if self.head.store_conditional(&link, Some(&node)) {
                return;
            }
        }
    }

    fn pop(&self) -> Option<u64> {
        loop {
            let (cur, link) = self.head.load_linked();
            let cur = cur?;
            let next = cur.next.load();
            if self.head.store_conditional(&link, next.as_ref()) {
                return Some(cur.value);
            }
        }
    }

    fn impl_name(&self) -> String {
        format!("stack-lfrc-llsc/{}", W::strategy_name())
    }
}

impl<W: DcasWord> Drop for LlscStack<W> {
    fn drop(&mut self) {
        // The head is not a SharedField (it carries a version word), so
        // release its reference explicitly; the chain cascades.
        self.head.store(None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfrc_core::McasWord;

    #[test]
    fn sequential_lifo() {
        let s: LlscStack<McasWord> = LlscStack::new();
        assert_eq!(s.pop(), None);
        for v in 1..=10 {
            s.push(v);
        }
        for v in (1..=10).rev() {
            assert_eq!(s.pop(), Some(v));
        }
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn concurrent_conservation_and_no_leak() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let s: LlscStack<McasWord> = LlscStack::new();
        let census = std::sync::Arc::clone(s.heap().census());
        let sum = AtomicU64::new(0);
        let count = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let (s, sum, count) = (&s, &sum, &count);
                scope.spawn(move || {
                    for i in 0..2_000u64 {
                        s.push(t * 2_000 + i + 1);
                        if i % 2 == 0 {
                            if let Some(v) = s.pop() {
                                sum.fetch_add(v, Ordering::Relaxed);
                                count.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                });
            }
        });
        while let Some(v) = s.pop() {
            sum.fetch_add(v, Ordering::Relaxed);
            count.fetch_add(1, Ordering::Relaxed);
        }
        let n = 8_000u64;
        assert_eq!(count.load(Ordering::Relaxed), n);
        assert_eq!(sum.load(Ordering::Relaxed), n * (n + 1) / 2);
        drop(s);
        assert_eq!(census.live(), 0);
    }

    #[test]
    fn drop_with_contents_frees_all() {
        let census;
        {
            let s: LlscStack<McasWord> = LlscStack::new();
            census = std::sync::Arc::clone(s.heap().census());
            for v in 0..1_000 {
                s.push(v);
            }
        }
        assert_eq!(census.live(), 0);
    }
}
