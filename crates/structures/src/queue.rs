//! Michael–Scott queues: GC-dependent (epoch-reclaimed) and
//! LFRC-transformed.
//!
//! The Michael–Scott queue is the paper's reference \[13\] — cited as an
//! example of a lock-free structure that, without GC, must "require
//! maintenance of a special freelist, whose storage cannot in general be
//! reused for other purposes". The LFRC transformation removes that
//! restriction: nodes go back to the general allocator the moment their
//! counts drain.

use std::fmt;
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};

use lfrc_core::defer::{self, Borrowed};
use lfrc_core::{DcasWord, Heap, IncLocal, Links, Local, PtrField, SharedField, Strategy};
use lfrc_reclaim::Collector;

use crate::stack::with_gc_guard;

/// A concurrent FIFO queue of `u64` values.
pub trait ConcurrentQueue: Send + Sync {
    /// Enqueues a value at the tail.
    fn enqueue(&self, value: u64);
    /// Dequeues the oldest value, or `None` if empty.
    fn dequeue(&self) -> Option<u64>;
    /// Implementation label for benchmark tables.
    fn impl_name(&self) -> String;
}

// ---------------------------------------------------------------------------
// GC-dependent M&S queue (native CAS + epoch reclamation)
// ---------------------------------------------------------------------------

struct GcNode {
    value: AtomicU64,
    next: AtomicPtr<GcNode>,
}

/// The classic two-lock-free Michael–Scott queue, written GC-style and
/// run on epoch-based reclamation (a dequeued sentinel is retired at its
/// unlink point).
///
/// # Example
///
/// ```
/// use lfrc_structures::{ConcurrentQueue, GcQueue};
///
/// let q = GcQueue::new();
/// q.enqueue(1);
/// q.enqueue(2);
/// assert_eq!(q.dequeue(), Some(1));
/// assert_eq!(q.dequeue(), Some(2));
/// assert_eq!(q.dequeue(), None);
/// ```
pub struct GcQueue {
    head: AtomicPtr<GcNode>,
    tail: AtomicPtr<GcNode>,
    collector: Collector,
}

impl fmt::Debug for GcQueue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GcQueue")
            .field("collector", &self.collector)
            .finish()
    }
}

impl Default for GcQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl GcQueue {
    /// Creates an empty queue (one sentinel node).
    pub fn new() -> Self {
        let sentinel = Box::into_raw(Box::new(GcNode {
            value: AtomicU64::new(0),
            next: AtomicPtr::new(ptr::null_mut()),
        }));
        GcQueue {
            head: AtomicPtr::new(sentinel),
            tail: AtomicPtr::new(sentinel),
            collector: Collector::new(),
        }
    }

    /// The queue's collector (for pending-garbage inspection in tests).
    pub fn collector(&self) -> &Collector {
        &self.collector
    }
}

impl ConcurrentQueue for GcQueue {
    fn enqueue(&self, value: u64) {
        let node = Box::into_raw(Box::new(GcNode {
            value: AtomicU64::new(value),
            next: AtomicPtr::new(ptr::null_mut()),
        }));
        with_gc_guard(&self.collector, |_| loop {
            let tail = self.tail.load(Ordering::Acquire);
            // Safety: pinned; tail cannot be reclaimed under us.
            let next = unsafe { (*tail).next.load(Ordering::Acquire) };
            if next.is_null() {
                if unsafe { &(*tail).next }
                    .compare_exchange(ptr::null_mut(), node, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    // Swing the tail; failure means someone helped.
                    let _ =
                        self.tail
                            .compare_exchange(tail, node, Ordering::AcqRel, Ordering::Acquire);
                    return;
                }
            } else {
                // Help a lagging enqueuer.
                let _ = self
                    .tail
                    .compare_exchange(tail, next, Ordering::AcqRel, Ordering::Acquire);
            }
        })
    }

    fn dequeue(&self) -> Option<u64> {
        with_gc_guard(&self.collector, |guard| loop {
            let head = self.head.load(Ordering::Acquire);
            let tail = self.tail.load(Ordering::Acquire);
            // Safety: pinned.
            let next = unsafe { (*head).next.load(Ordering::Acquire) };
            if next.is_null() {
                return None;
            }
            if head == tail {
                // Tail is lagging behind an in-flight enqueue: help.
                let _ = self
                    .tail
                    .compare_exchange(tail, next, Ordering::AcqRel, Ordering::Acquire);
                continue;
            }
            // Read the value *before* the CAS (Michael & Scott's order):
            // after the CAS another dequeuer may retire `next`'s
            // predecessor role. Pinned, so the read is safe either way.
            let value = unsafe { (*next).value.load(Ordering::Acquire) };
            if self
                .head
                .compare_exchange(head, next, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                // Old sentinel is unlinked: retire it.
                // Safety: unlinked, retired once.
                unsafe { guard.defer_destroy(head) };
                return Some(value);
            }
        })
    }

    fn impl_name(&self) -> String {
        "queue-gc-ebr/native".to_owned()
    }
}

impl Drop for GcQueue {
    fn drop(&mut self) {
        let mut cur = *self.head.get_mut();
        while !cur.is_null() {
            // Safety: exclusive access during drop.
            let node = unsafe { Box::from_raw(cur) };
            cur = node.next.load(Ordering::Relaxed);
        }
    }
}

// ---------------------------------------------------------------------------
// LFRC M&S queue
// ---------------------------------------------------------------------------

/// An LFRC queue node.
pub struct LfrcQueueNode<W: DcasWord> {
    value: u64,
    next: PtrField<LfrcQueueNode<W>, W>,
}

impl<W: DcasWord> Links<W> for LfrcQueueNode<W> {
    fn for_each_link(&self, f: &mut dyn FnMut(&PtrField<Self, W>)) {
        f(&self.next);
    }
}

impl<W: DcasWord> fmt::Debug for LfrcQueueNode<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LfrcQueueNode")
            .field("value", &self.value)
            .finish()
    }
}

/// The Michael–Scott queue transformed by the LFRC methodology.
///
/// Dequeued sentinels chain forward through `next`, so garbage is
/// cycle-free (step 3 holds naturally). Note how the problematic M&S
/// moment — reading `next->value` while another thread may be freeing
/// `next` — is benign here: the dequeuer's `LFRCLoad` of `head->next`
/// took a counted reference, which is the whole point of the paper's
/// DCAS-based load.
///
/// # Example
///
/// ```
/// use lfrc_structures::{ConcurrentQueue, LfrcQueue};
/// use lfrc_core::McasWord;
///
/// let q: LfrcQueue<McasWord> = LfrcQueue::new();
/// q.enqueue(7);
/// q.enqueue(8);
/// assert_eq!(q.dequeue(), Some(7));
/// assert_eq!(q.dequeue(), Some(8));
/// assert_eq!(q.dequeue(), None);
/// ```
pub struct LfrcQueue<W: DcasWord> {
    head: SharedField<LfrcQueueNode<W>, W>,
    tail: SharedField<LfrcQueueNode<W>, W>,
    heap: Heap<LfrcQueueNode<W>, W>,
    strategy: Strategy,
}

impl<W: DcasWord> fmt::Debug for LfrcQueue<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LfrcQueue")
            .field("census", self.heap.census())
            .finish()
    }
}

impl<W: DcasWord> Default for LfrcQueue<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W: DcasWord> LfrcQueue<W> {
    /// Creates an empty queue (one sentinel node, rc owned by `head` and
    /// `tail`).
    pub fn new() -> Self {
        Self::with_backend(lfrc_core::Backend::default())
    }

    /// Creates an empty queue whose nodes come from the given allocation
    /// backend — `Pooled` (the default) or `Global`. Experiment E12
    /// benches the two against each other.
    pub fn with_backend(backend: lfrc_core::Backend) -> Self {
        Self::with_backend_and_strategy(backend, Strategy::default())
    }

    /// Creates an empty queue using the given counted-load [`Strategy`],
    /// fixed for the instance's lifetime (the `DeferredInc` safety
    /// argument requires every displacing operation of the instance to
    /// grace-retire, so strategies never mix on one queue).
    pub fn with_strategy(strategy: Strategy) -> Self {
        Self::with_backend_and_strategy(lfrc_core::Backend::default(), strategy)
    }

    /// Creates an empty queue with both an explicit backend and an
    /// explicit counted-load strategy.
    pub fn with_backend_and_strategy(backend: lfrc_core::Backend, strategy: Strategy) -> Self {
        let heap: Heap<LfrcQueueNode<W>, W> = Heap::with_backend(backend);
        let sentinel = heap.alloc(LfrcQueueNode {
            value: 0,
            next: PtrField::null(),
        });
        let q = LfrcQueue {
            head: SharedField::null(),
            tail: SharedField::null(),
            heap,
            strategy,
        };
        q.head.store(Some(&sentinel));
        q.tail.store(Some(&sentinel));
        q
    }

    /// The heap (for census inspection).
    pub fn heap(&self) -> &Heap<LfrcQueueNode<W>, W> {
        &self.heap
    }

    /// The counted-load strategy this instance was built with.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Paper-faithful enqueue: every pointer read is `LFRCLoad`'s DCAS,
    /// every displaced count released eagerly — the executable spec the
    /// differential harness compares the fast strategies against.
    fn enqueue_dcas(&self, node: Local<LfrcQueueNode<W>, W>) {
        loop {
            let tail = self.tail.load().expect("tail is never null");
            let next = tail.next.load();
            match next {
                None => {
                    if tail.next.compare_and_set(None, Some(&node)) {
                        // Linearized; swing the tail (ok to fail).
                        let _ = self.tail.compare_and_set(Some(&tail), Some(&node));
                        return;
                    }
                }
                Some(ref next) => {
                    // Help the lagging enqueuer.
                    let _ = self.tail.compare_and_set(Some(&tail), Some(next));
                }
            }
        }
    }

    /// Paper-faithful dequeue (see [`LfrcQueue::enqueue_dcas`]).
    fn dequeue_dcas(&self) -> Option<u64> {
        loop {
            let head = self.head.load().expect("head is never null");
            let tail = self.tail.load().expect("tail is never null");
            let next = head.next.load();
            let Some(next) = next else {
                return None; // counted loads: null is always genuine
            };
            if Local::ptr_eq(&head, &tail) {
                let _ = self.tail.compare_and_set(Some(&tail), Some(&next));
                continue;
            }
            let value = next.value; // counted reference: safe read
            if self.head.compare_and_set(Some(&head), Some(&next)) {
                return Some(value);
            }
        }
    }

    /// Deferred-decrement enqueue (DESIGN.md §5.9) — see the doc comment
    /// on [`ConcurrentQueue::enqueue`] for why the promote is
    /// load-bearing here.
    fn enqueue_dec(&self, node: Local<LfrcQueueNode<W>, W>) {
        defer::pinned(|pin| loop {
            let tail = self.tail.load_deferred(pin).expect("tail is never null");
            let Some(tail_l) = Borrowed::promote(&tail) else {
                continue; // tail died before we could hold it; re-read
            };
            let next = tail_l.next.load(); // counted; `tail_l` keeps it sound
            match next {
                None => {
                    if tail_l.next.compare_and_set(None, Some(&node)) {
                        // Linearized; swing the tail (ok to fail).
                        let _ = self.tail.compare_and_set_deferred(Some(&tail), Some(&node));
                        return;
                    }
                }
                Some(ref next) => {
                    // Help the lagging enqueuer.
                    let _ = self.tail.compare_and_set_deferred(Some(&tail), Some(next));
                }
            }
        })
    }

    /// Deferred-decrement dequeue (DESIGN.md §5.9).
    fn dequeue_dec(&self) -> Option<u64> {
        defer::pinned(|pin| loop {
            let head = self.head.load_deferred(pin).expect("head is never null");
            let tail = self.tail.load_deferred(pin).expect("tail is never null");
            let next = head.next.load(); // sound even if `head` died (see ops::load)
            let Some(next) = next else {
                // Null may be genuine (empty queue) or `head`'s harvested
                // field. A nonzero count *after* the read proves harvest
                // had not begun when we read it.
                if Borrowed::ref_count(&head) > 0 {
                    return None;
                }
                continue;
            };
            if Borrowed::ptr_eq(&head, &tail) {
                let _ = self.tail.compare_and_set_deferred(Some(&tail), Some(&next));
                continue;
            }
            let value = next.value; // counted reference: safe read
            if self.head.compare_and_set_deferred(Some(&head), Some(&next)) {
                // Old sentinel's location count is parked; its free (and
                // cascade) runs at the next flush instead of here.
                return Some(value);
            }
        })
    }

    /// Deferred-**increment** enqueue (DESIGN.md §5.13). The §5.9
    /// version must promote the tail before touching its `next` (a freed
    /// tail's harvested field would strand the node); here no promote is
    /// needed at all — the cover-unit argument keeps every object loaded
    /// inside the pin alive, harvested fields included, until we unpin.
    fn enqueue_inc(&self, node: Local<LfrcQueueNode<W>, W>) {
        defer::pinned(|pin| loop {
            let tail = self.tail.load_counted_inc(pin).expect("tail is never null");
            // `tail` is alive for the whole pin, so its `next` field is
            // genuine (never a harvested null).
            let next = tail.next.load_counted_inc(pin);
            match next {
                None => {
                    if tail.next.compare_and_set(None, Some(&node)) {
                        // Linearized; swing the tail (ok to fail). The
                        // swing's displaced unit is grace-retired.
                        let _ = self.tail.compare_and_set_inc(Some(&tail), Some(&node));
                        return;
                    }
                }
                Some(next) => {
                    // Help the lagging enqueuer; the settle is a plain
                    // fetch_add (no CAS — `next` is alive all pin).
                    let next_l = IncLocal::promote(next);
                    let _ = self.tail.compare_and_set_inc(Some(&tail), Some(&next_l));
                }
            }
        })
    }

    /// Deferred-increment dequeue (DESIGN.md §5.13): plain loads for
    /// head, tail *and* `head.next` — no DCAS, no CAS-from-nonzero, no
    /// rc re-validation on the empty check.
    fn dequeue_inc(&self) -> Option<u64> {
        defer::pinned(|pin| loop {
            let head = self.head.load_counted_inc(pin).expect("head is never null");
            let tail = self.tail.load_counted_inc(pin).expect("tail is never null");
            let next = head.next.load_counted_inc(pin);
            let Some(next) = next else {
                // Genuinely empty: `head` cannot have been harvested
                // while we are pinned (cover-unit argument), so a null
                // `next` needs no ref-count validation — contrast
                // `dequeue_dec`.
                return None;
            };
            if IncLocal::ptr_eq(&head, &tail) {
                let next_l = IncLocal::promote(next);
                let _ = self.tail.compare_and_set_inc(Some(&tail), Some(&next_l));
                continue;
            }
            let value = next.value; // alive for the whole pin
            let next_l = IncLocal::promote(next); // plain fetch_add
            if self.head.compare_and_set_inc(Some(&head), Some(&next_l)) {
                // Old sentinel's unit is grace-retired by `cas_inc`.
                return Some(value);
            }
            // Retry: dropping `next_l` releases its +1 eagerly — safe,
            // because the old sentinel's field unit on `next` is
            // grace-deferred past our pin, keeping the count ≥ 1.
        })
    }
}

impl<W: DcasWord> ConcurrentQueue for LfrcQueue<W> {
    /// Dispatches on the instance's [`Strategy`]. Under the default
    /// `DeferredDec` (§5.9) the tail is read with a plain load, then
    /// **promoted** before anything is installed into its `next` —
    /// installing into a freed node's harvested field would strand the
    /// new node (harvest already ran; nothing would ever release it), so
    /// the promote's held count is load-bearing there. `DeferredInc`
    /// (§5.13) needs no promote at all; `Dcas` is the paper-faithful
    /// reference.
    fn enqueue(&self, value: u64) {
        let node = self.heap.alloc(LfrcQueueNode {
            value,
            next: PtrField::null(),
        });
        match self.strategy {
            Strategy::Dcas => self.enqueue_dcas(node),
            Strategy::DeferredDec => self.enqueue_dec(node),
            Strategy::DeferredInc => self.enqueue_inc(node),
        }
    }

    /// Dispatches on the instance's [`Strategy`]. Under `DeferredDec`,
    /// head and tail are plain loads; the only DCAS rounds are the
    /// `next` load and the head swing, which parks the old sentinel's
    /// count on the decrement buffer — a dequeue never pays the
    /// sentinel's free (the paper's per-dequeue pause) inline.
    /// `DeferredInc` makes the `next` load plain too and grace-retires
    /// the sentinel's unit.
    fn dequeue(&self) -> Option<u64> {
        match self.strategy {
            Strategy::Dcas => self.dequeue_dcas(),
            Strategy::DeferredDec => self.dequeue_dec(),
            Strategy::DeferredInc => self.dequeue_inc(),
        }
    }

    fn impl_name(&self) -> String {
        format!("queue-lfrc/{}/{}", W::strategy_name(), self.strategy.name())
    }
}

// head/tail SharedFields release their references on drop; the node chain
// is acyclic, so the cascade frees any values still enqueued.

#[cfg(test)]
mod tests {
    use super::*;
    use lfrc_core::McasWord;
    use std::sync::atomic::{AtomicU64 as Counter, Ordering as O};
    use std::sync::Barrier;

    fn exercise_sequential<Q: ConcurrentQueue>(q: &Q) {
        assert_eq!(q.dequeue(), None);
        for v in 1..=10 {
            q.enqueue(v);
        }
        for v in 1..=10 {
            assert_eq!(q.dequeue(), Some(v));
        }
        assert_eq!(q.dequeue(), None);
        // Interleaved.
        q.enqueue(1);
        q.enqueue(2);
        assert_eq!(q.dequeue(), Some(1));
        q.enqueue(3);
        assert_eq!(q.dequeue(), Some(2));
        assert_eq!(q.dequeue(), Some(3));
        assert_eq!(q.dequeue(), None);
    }

    fn exercise_concurrent<Q: ConcurrentQueue>(q: &Q, threads: usize, per: u64) {
        let sum = Counter::new(0);
        let count = Counter::new(0);
        let barrier = Barrier::new(threads * 2);
        std::thread::scope(|scope| {
            for t in 0..threads {
                let (q, barrier) = (&*q, &barrier);
                scope.spawn(move || {
                    barrier.wait();
                    for i in 0..per {
                        q.enqueue(t as u64 * per + i + 1);
                    }
                    // Explicit: `scope` can return before this thread's
                    // TLS-destructor flush runs, racing the census read.
                    // Settle first so a (never-expected) increment residue
                    // cannot hold the advance gate closed either.
                    lfrc_core::settle_thread();
                    lfrc_core::defer::flush_thread();
                });
            }
            for _ in 0..threads {
                let (q, barrier, sum, count) = (&*q, &barrier, &sum, &count);
                scope.spawn(move || {
                    barrier.wait();
                    let mut got = 0;
                    let mut idle = 0u32;
                    while got < per && idle < 1_000_000 {
                        match q.dequeue() {
                            Some(v) => {
                                sum.fetch_add(v, O::Relaxed);
                                count.fetch_add(1, O::Relaxed);
                                got += 1;
                                idle = 0;
                            }
                            None => {
                                idle += 1;
                                std::thread::yield_now();
                            }
                        }
                    }
                    lfrc_core::settle_thread();
                    lfrc_core::defer::flush_thread();
                });
            }
        });
        while let Some(v) = q.dequeue() {
            sum.fetch_add(v, O::Relaxed);
            count.fetch_add(1, O::Relaxed);
        }
        let n = threads as u64 * per;
        assert_eq!(count.load(O::Relaxed), n);
        assert_eq!(sum.load(O::Relaxed), n * (n + 1) / 2);
    }

    #[test]
    fn gc_queue_sequential() {
        exercise_sequential(&GcQueue::new());
    }

    #[test]
    fn lfrc_queue_sequential() {
        let q: LfrcQueue<McasWord> = LfrcQueue::new();
        exercise_sequential(&q);
    }

    #[test]
    fn gc_queue_concurrent() {
        exercise_concurrent(&GcQueue::new(), 4, 3_000);
    }

    #[test]
    fn lfrc_queue_concurrent() {
        let q: LfrcQueue<McasWord> = LfrcQueue::new();
        let census = std::sync::Arc::clone(q.heap().census());
        exercise_concurrent(&q, 4, 3_000);
        drop(q);
        lfrc_core::defer::flush_thread(); // main thread's parked counts
        assert_eq!(census.live(), 0, "LFRC queue leaked nodes");
    }

    /// See the stack's twin: DeferredInc frees run only after epoch
    /// advances, so census asserts drive the collector with a bound.
    #[track_caller]
    fn assert_census_drains(census: &lfrc_core::Census) {
        let t0 = std::time::Instant::now();
        while census.live() != 0 && t0.elapsed() < std::time::Duration::from_secs(10) {
            lfrc_core::defer::flush_thread();
            lfrc_dcas::quiesce();
            std::thread::yield_now();
        }
        assert_eq!(census.live(), 0, "census did not drain");
    }

    #[test]
    fn lfrc_queue_every_strategy_sequential() {
        for strategy in Strategy::ALL {
            let q: LfrcQueue<McasWord> = LfrcQueue::with_strategy(strategy);
            assert_eq!(q.strategy(), strategy);
            assert!(
                q.impl_name().ends_with(strategy.name()),
                "{}",
                q.impl_name()
            );
            exercise_sequential(&q);
            let census = std::sync::Arc::clone(q.heap().census());
            drop(q);
            assert_census_drains(&census);
        }
    }

    #[test]
    fn lfrc_queue_deferred_inc_concurrent() {
        let q: LfrcQueue<McasWord> = LfrcQueue::with_strategy(Strategy::DeferredInc);
        let census = std::sync::Arc::clone(q.heap().census());
        exercise_concurrent(&q, 4, 3_000);
        drop(q);
        assert_census_drains(&census);
    }

    #[test]
    fn lfrc_queue_dcas_strategy_concurrent() {
        let q: LfrcQueue<McasWord> = LfrcQueue::with_strategy(Strategy::Dcas);
        let census = std::sync::Arc::clone(q.heap().census());
        exercise_concurrent(&q, 2, 500); // eager DCAS path is slow; keep it small
        drop(q);
        assert_census_drains(&census);
    }

    #[test]
    fn lfrc_queue_fifo_per_producer() {
        // Single producer, single consumer: strict FIFO must hold.
        let q: LfrcQueue<McasWord> = LfrcQueue::new();
        std::thread::scope(|s| {
            let qp = &q;
            s.spawn(move || {
                for v in 1..=5_000u64 {
                    qp.enqueue(v);
                }
            });
            let qc = &q;
            s.spawn(move || {
                let mut last = 0;
                let mut got = 0;
                let mut idle = 0u32;
                while got < 5_000 && idle < 1_000_000 {
                    if let Some(v) = qc.dequeue() {
                        assert!(v > last, "FIFO violated: {v} after {last}");
                        last = v;
                        got += 1;
                        idle = 0;
                    } else {
                        idle += 1;
                        std::thread::yield_now();
                    }
                }
                assert_eq!(got, 5_000);
            });
        });
    }

    #[test]
    fn lfrc_queue_drop_frees_enqueued() {
        let q: LfrcQueue<McasWord> = LfrcQueue::new();
        let census = std::sync::Arc::clone(q.heap().census());
        for v in 0..1_000 {
            q.enqueue(v);
        }
        drop(q);
        lfrc_core::defer::flush_thread(); // tail swings parked counts
        assert_eq!(census.live(), 0);
    }

    #[test]
    fn gc_queue_reclaims_through_epochs() {
        let q = GcQueue::new();
        for v in 0..200 {
            q.enqueue(v);
        }
        for _ in 0..200 {
            q.dequeue();
        }
        // Flush this thread's cached handle (it holds the retired bag).
        crate::stack::flush_thread(q.collector());
        let stats = q.collector().stats();
        assert_eq!(
            stats.pending(),
            0,
            "EBR failed to reclaim dequeued sentinels"
        );
        assert_eq!(stats.retired, 200);
    }
}
