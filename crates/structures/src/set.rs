//! A lock-free ordered set (sorted linked list), LFRC-managed — a third
//! demonstration of the methodology's breadth.
//!
//! The paper motivates GC-simplified concurrent structures with search
//! structures (its \[10\] is Kung & Lehman's concurrent binary search
//! trees, its \[16\] Pugh's concurrent skip lists). This module applies
//! LFRC to the *lazy-list* style ordered set, with one twist that makes
//! it a particularly good fit for this paper:
//!
//! Harris's classic lock-free list marks a node deleted by setting a low
//! bit **inside the next pointer** — pointer arithmetic that the LFRC
//! compliance criterion (§2.1) explicitly forbids ("this precludes the
//! use of pointer arithmetic"). With DCAS the mark can live in its own
//! word: every structural update is a
//! [`dcas_ptr_word`](lfrc_core::ops::dcas_ptr_word) that swings
//! `pred.next` *atomically with* validating `pred.marked == 0`. The mark
//! never contaminates the pointer, so the implementation stays
//! LFRC-compliant — an instance of the paper's thesis that DCAS buys
//! algorithmic simplicity.
//!
//! Operation sketch (standard lazy-list arguments apply):
//!
//! * `insert` — find ⟨pred, curr⟩, link a new node by DCAS
//!   ⟨`pred.next`: curr→new, `pred.marked` = 0⟩;
//! * `remove` — logically delete with a CAS on `curr.marked` (0→1); the
//!   mark freezes `curr.next` (all writers validate the mark), then
//!   best-effort physical unlink;
//! * `find` — helps unlink marked nodes it passes, by the same DCAS.
//!
//! Garbage is cycle-free: an unlinked node's `next` points forward into
//! the list, so step 3 of the methodology holds with no modification.

use std::fmt;

use lfrc_core::{DcasWord, Heap, Links, Local, PtrField, SharedField};

/// Keys are `u64` strictly below this bound (one value is reserved for
/// the tail sentinel).
pub const MAX_KEY: u64 = u64::MAX - 1;

/// Internal key encoding: head sentinel = 0, user key k = k + 1,
/// tail sentinel = u64::MAX.
#[inline]
fn encode_key(k: u64) -> u64 {
    assert!(k < MAX_KEY, "set keys must be < MAX_KEY");
    k + 1
}

const HEAD_KEY: u64 = 0;
const TAIL_KEY: u64 = u64::MAX;

/// A node of the ordered set.
pub struct SetNode<W: DcasWord> {
    /// Encoded key (immutable after construction).
    key: u64,
    /// 0 = live, 1 = logically deleted. A plain word cell, DCAS-able
    /// with the pointer cells — this is where Harris's pointer tag went.
    marked: W,
    next: PtrField<SetNode<W>, W>,
}

impl<W: DcasWord> Links<W> for SetNode<W> {
    fn for_each_link(&self, f: &mut dyn FnMut(&PtrField<Self, W>)) {
        f(&self.next);
    }
}

impl<W: DcasWord> fmt::Debug for SetNode<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SetNode")
            .field("key", &self.key)
            .field("marked", &self.marked.load())
            .finish()
    }
}

/// A lock-free sorted-list set of `u64` keys, memory-managed by LFRC.
///
/// # Example
///
/// ```
/// use lfrc_structures::LfrcOrderedSet;
/// use lfrc_core::McasWord;
///
/// let set: LfrcOrderedSet<McasWord> = LfrcOrderedSet::new();
/// assert!(set.insert(5));
/// assert!(!set.insert(5));
/// assert!(set.contains(5));
/// assert!(set.remove(5));
/// assert!(!set.contains(5));
/// assert!(!set.remove(5));
/// ```
pub struct LfrcOrderedSet<W: DcasWord> {
    head: SharedField<SetNode<W>, W>,
    heap: Heap<SetNode<W>, W>,
}

impl<W: DcasWord> fmt::Debug for LfrcOrderedSet<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LfrcOrderedSet")
            .field("census", self.heap.census())
            .finish()
    }
}

impl<W: DcasWord> Default for LfrcOrderedSet<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W: DcasWord> LfrcOrderedSet<W> {
    /// Creates an empty set (two sentinel nodes).
    pub fn new() -> Self {
        let heap: Heap<SetNode<W>, W> = Heap::new();
        let tail = heap.alloc(SetNode {
            key: TAIL_KEY,
            marked: W::new(0),
            next: PtrField::null(),
        });
        let head_node = heap.alloc(SetNode {
            key: HEAD_KEY,
            marked: W::new(0),
            next: PtrField::null(),
        });
        head_node.next.store_consume(tail);
        let set = LfrcOrderedSet {
            head: SharedField::null(),
            heap,
        };
        set.head.store_consume(head_node);
        set
    }

    /// The heap (census inspection).
    pub fn heap(&self) -> &Heap<SetNode<W>, W> {
        &self.heap
    }

    /// Atomically swings `pred.next` from `curr` to `new` while
    /// validating that `pred` is still unmarked — the DCAS that replaces
    /// Harris's pointer tagging.
    fn swing(
        pred: &Local<SetNode<W>, W>,
        curr: Option<&Local<SetNode<W>, W>>,
        new: Option<&Local<SetNode<W>, W>>,
    ) -> bool {
        // Safety: `pred` is a counted local reference, so `pred.marked`
        // is a cell in a live object for the duration of the call, as
        // `dcas_ptr_word` requires; `curr`/`new` are caller-held counted
        // references (or null).
        unsafe {
            lfrc_core::ops::dcas_ptr_word(
                &pred.next,
                &pred.marked,
                Local::option_as_raw(curr),
                0,
                Local::option_as_raw(new),
                0,
            )
        }
    }

    /// Finds the first node with key ≥ `ekey` (encoded), returning
    /// ⟨pred, curr⟩ with `pred.key < ekey ≤ curr.key`, unlinking any
    /// marked nodes encountered on the way.
    fn find(&self, ekey: u64) -> (Local<SetNode<W>, W>, Local<SetNode<W>, W>) {
        'retry: loop {
            let mut pred = self.head.load().expect("head sentinel");
            let mut curr = pred.next.load().expect("tail sentinel terminates");
            loop {
                // Help: physically remove logically deleted nodes.
                while curr.marked.load() == 1 {
                    let succ = curr.next.load().expect("marked node precedes tail");
                    if !Self::swing(&pred, Some(&curr), Some(&succ)) {
                        // pred moved on or got marked: restart.
                        continue 'retry;
                    }
                    curr = succ;
                }
                if curr.key >= ekey {
                    return (pred, curr);
                }
                let next = curr.next.load().expect("tail terminates");
                pred = curr;
                curr = next;
            }
        }
    }

    /// Inserts `key`; `false` if already present.
    pub fn insert(&self, key: u64) -> bool {
        let ekey = encode_key(key);
        loop {
            let (pred, curr) = self.find(ekey);
            if curr.key == ekey {
                return false;
            }
            let node = self.heap.alloc(SetNode {
                key: ekey,
                marked: W::new(0),
                next: PtrField::null(),
            });
            node.next.store(Some(&curr));
            if Self::swing(&pred, Some(&curr), Some(&node)) {
                return true;
            }
            // Lost a race: `node` drops here and is freed immediately.
        }
    }

    /// Removes `key`; `false` if absent.
    pub fn remove(&self, key: u64) -> bool {
        let ekey = encode_key(key);
        loop {
            let (pred, curr) = self.find(ekey);
            if curr.key != ekey {
                return false;
            }
            // Logical deletion; the mark also freezes `curr.next`
            // (every writer validates the mark via DCAS).
            if !curr.marked.compare_and_swap(0, 1) {
                // Another remover got it first; re-find (we will observe
                // either the unlink or the mark and return false).
                continue;
            }
            // Best-effort physical unlink; finds will help if we fail.
            let succ = curr.next.load().expect("marked node precedes tail");
            let _ = Self::swing(&pred, Some(&curr), Some(&succ));
            return true;
        }
    }

    /// Membership test (read-only traversal; does not help unlink).
    pub fn contains(&self, key: u64) -> bool {
        let ekey = encode_key(key);
        let mut curr = self.head.load().expect("head sentinel");
        while curr.key < ekey {
            let next = curr.next.load().expect("tail terminates");
            curr = next;
        }
        curr.key == ekey && curr.marked.load() == 0
    }

    /// Number of live (unmarked, reachable) keys — O(n) diagnostic.
    pub fn len(&self) -> usize {
        let mut n = 0;
        let mut curr = self.head.load().expect("head sentinel");
        loop {
            let next = curr.next.load();
            let Some(next) = next else { break };
            if next.key != TAIL_KEY && next.marked.load() == 0 {
                n += 1;
            }
            curr = next;
        }
        n
    }

    /// `true` if no live keys are present.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// The head root releases its reference on drop; the chain (including the
// sentinels and any still-linked marked nodes) is acyclic and cascades.

#[cfg(test)]
mod tests {
    use super::*;
    use lfrc_core::McasWord;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Barrier;

    #[test]
    fn sequential_semantics() {
        let s: LfrcOrderedSet<McasWord> = LfrcOrderedSet::new();
        assert!(s.is_empty());
        assert!(s.insert(10));
        assert!(s.insert(5));
        assert!(s.insert(20));
        assert!(!s.insert(10), "duplicate insert must fail");
        assert_eq!(s.len(), 3);
        assert!(s.contains(5) && s.contains(10) && s.contains(20));
        assert!(!s.contains(15));
        assert!(s.remove(10));
        assert!(!s.remove(10), "double remove must fail");
        assert!(!s.contains(10));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn no_leaks_including_failed_inserts() {
        let census;
        {
            let s: LfrcOrderedSet<McasWord> = LfrcOrderedSet::new();
            census = std::sync::Arc::clone(s.heap().census());
            for k in 0..500 {
                s.insert(k % 100); // 400 duplicates allocate-and-free
            }
            for k in 0..100 {
                s.remove(k);
            }
            assert!(s.is_empty());
        }
        assert_eq!(census.live(), 0, "set leaked nodes");
    }

    #[test]
    fn marked_nodes_are_helped_out() {
        let s: LfrcOrderedSet<McasWord> = LfrcOrderedSet::new();
        for k in 0..50 {
            s.insert(k);
        }
        for k in (0..50).step_by(2) {
            s.remove(k);
        }
        // Traversal by an unrelated operation must observe only live keys.
        assert_eq!(s.len(), 25);
        for k in 0..50 {
            assert_eq!(s.contains(k), k % 2 == 1);
        }
    }

    #[test]
    fn concurrent_insert_remove_disjoint_ranges() {
        const THREADS: usize = 4;
        const PER: u64 = 500;
        let s: LfrcOrderedSet<McasWord> = LfrcOrderedSet::new();
        let barrier = Barrier::new(THREADS);
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let (s, barrier) = (&s, &barrier);
                scope.spawn(move || {
                    barrier.wait();
                    let base = t as u64 * PER;
                    for k in base..base + PER {
                        assert!(s.insert(k));
                    }
                    for k in (base..base + PER).step_by(2) {
                        assert!(s.remove(k));
                    }
                });
            }
        });
        assert_eq!(s.len(), THREADS * PER as usize / 2);
    }

    #[test]
    fn concurrent_contention_single_key_space() {
        // All threads fight over the same small key space; every
        // successful insert/remove must strictly alternate per key.
        const THREADS: usize = 6;
        const OPS: u64 = 2_000;
        const KEYS: u64 = 8;
        let s: LfrcOrderedSet<McasWord> = LfrcOrderedSet::new();
        let net = AtomicU64::new(0); // inserts minus removes (successful)
        let barrier = Barrier::new(THREADS);
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let (s, net, barrier) = (&s, &net, &barrier);
                scope.spawn(move || {
                    barrier.wait();
                    let mut x = t as u64 * 7919 + 1;
                    for _ in 0..OPS {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let k = x % KEYS;
                        if x & 1 == 0 {
                            if s.insert(k) {
                                net.fetch_add(1, Ordering::Relaxed);
                            }
                        } else if s.remove(k) {
                            net.fetch_sub(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(
            s.len() as u64,
            net.load(Ordering::Relaxed),
            "successful inserts minus removes must equal final size"
        );
    }

    #[test]
    fn drop_frees_everything_including_marked_stragglers() {
        let census;
        {
            let s: LfrcOrderedSet<McasWord> = LfrcOrderedSet::new();
            census = std::sync::Arc::clone(s.heap().census());
            for k in 0..200 {
                s.insert(k);
            }
            // Remove some without giving finds a chance to help unlink.
            for k in 0..200 {
                if k % 3 == 0 {
                    s.remove(k);
                }
            }
        }
        assert_eq!(census.live(), 0);
    }
}
