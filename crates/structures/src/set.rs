//! A lock-free ordered set (sorted linked list), LFRC-managed — a third
//! demonstration of the methodology's breadth.
//!
//! The paper motivates GC-simplified concurrent structures with search
//! structures (its \[10\] is Kung & Lehman's concurrent binary search
//! trees, its \[16\] Pugh's concurrent skip lists). This module applies
//! LFRC to the *lazy-list* style ordered set, with one twist that makes
//! it a particularly good fit for this paper:
//!
//! Harris's classic lock-free list marks a node deleted by setting a low
//! bit **inside the next pointer** — pointer arithmetic that the LFRC
//! compliance criterion (§2.1) explicitly forbids ("this precludes the
//! use of pointer arithmetic"). With DCAS the mark can live in its own
//! word: every structural update is a
//! [`dcas_ptr_word`](lfrc_core::ops::dcas_ptr_word) that swings
//! `pred.next` *atomically with* validating `pred.marked == 0`. The mark
//! never contaminates the pointer, so the implementation stays
//! LFRC-compliant — an instance of the paper's thesis that DCAS buys
//! algorithmic simplicity.
//!
//! Operation sketch (standard lazy-list arguments apply):
//!
//! * `insert` — find ⟨pred, curr⟩, link a new node by DCAS
//!   ⟨`pred.next`: curr→new, `pred.marked` = 0⟩;
//! * `remove` — logically delete with a CAS on `curr.marked` (0→1); the
//!   mark freezes `curr.next` (all writers validate the mark), then
//!   best-effort physical unlink;
//! * `find` — helps unlink marked nodes it passes, by the same DCAS.
//!
//! Garbage is cycle-free: an unlinked node's `next` points forward into
//! the list, so step 3 of the methodology holds with no modification.
//!
//! # Load strategies
//!
//! The set honours a per-instance [`Strategy`] (DESIGN.md §5.13):
//!
//! * writers (`find`/`insert`/`remove`) always use counted `LFRCLoad`s —
//!   they hold references across DCAS swings, where counted locals are
//!   the natural idiom under every strategy;
//! * under [`Strategy::DeferredInc`] the unlink `swing` routes its
//!   displaced reference through
//!   [`dcas_ptr_word_retire`](lfrc_core::ops::dcas_ptr_word_retire), so
//!   every displaced field unit is grace-retired — the cover invariant
//!   that lets the read path skip validation entirely;
//! * `contains` picks its traversal by strategy: counted hops
//!   (`Dcas`/`DeferredDec`) or pin-scoped deferred-increment hops
//!   (`DeferredInc`, one plain load + TLS append per hop).

use std::fmt;

use lfrc_core::defer;
use lfrc_core::{DcasWord, Heap, Links, Local, PtrField, SharedField, Strategy};

/// Keys are `u64` strictly below this bound (one value is reserved for
/// the tail sentinel).
pub const MAX_KEY: u64 = u64::MAX - 1;

/// Internal key encoding: head sentinel = 0, user key k = k + 1,
/// tail sentinel = u64::MAX.
#[inline]
fn encode_key(k: u64) -> u64 {
    assert!(k < MAX_KEY, "set keys must be < MAX_KEY");
    k + 1
}

const HEAD_KEY: u64 = 0;
const TAIL_KEY: u64 = u64::MAX;

/// A node of the ordered set.
pub struct SetNode<W: DcasWord> {
    /// Encoded key (immutable after construction).
    key: u64,
    /// 0 = live, 1 = logically deleted. A plain word cell, DCAS-able
    /// with the pointer cells — this is where Harris's pointer tag went.
    marked: W,
    next: PtrField<SetNode<W>, W>,
}

impl<W: DcasWord> Links<W> for SetNode<W> {
    fn for_each_link(&self, f: &mut dyn FnMut(&PtrField<Self, W>)) {
        f(&self.next);
    }
}

impl<W: DcasWord> fmt::Debug for SetNode<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SetNode")
            .field("key", &self.key)
            .field("marked", &self.marked.load())
            .finish()
    }
}

/// A lock-free sorted-list set of `u64` keys, memory-managed by LFRC.
///
/// # Example
///
/// ```
/// use lfrc_structures::LfrcOrderedSet;
/// use lfrc_core::McasWord;
///
/// let set: LfrcOrderedSet<McasWord> = LfrcOrderedSet::new();
/// assert!(set.insert(5));
/// assert!(!set.insert(5));
/// assert!(set.contains(5));
/// assert!(set.remove(5));
/// assert!(!set.contains(5));
/// assert!(!set.remove(5));
/// ```
pub struct LfrcOrderedSet<W: DcasWord> {
    head: SharedField<SetNode<W>, W>,
    heap: Heap<SetNode<W>, W>,
    strategy: Strategy,
}

impl<W: DcasWord> fmt::Debug for LfrcOrderedSet<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LfrcOrderedSet")
            .field("census", self.heap.census())
            .field("strategy", &self.strategy)
            .finish()
    }
}

impl<W: DcasWord> Default for LfrcOrderedSet<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W: DcasWord> LfrcOrderedSet<W> {
    /// Creates an empty set (two sentinel nodes) with the default
    /// [`Strategy`].
    pub fn new() -> Self {
        Self::with_strategy(Strategy::default())
    }

    /// Creates an empty set using `strategy` for its load protocol.
    pub fn with_strategy(strategy: Strategy) -> Self {
        let heap: Heap<SetNode<W>, W> = Heap::new();
        let tail = heap.alloc(SetNode {
            key: TAIL_KEY,
            marked: W::new(0),
            next: PtrField::null(),
        });
        let head_node = heap.alloc(SetNode {
            key: HEAD_KEY,
            marked: W::new(0),
            next: PtrField::null(),
        });
        head_node.next.store_consume(tail);
        let set = LfrcOrderedSet {
            head: SharedField::null(),
            heap,
            strategy,
        };
        set.head.store_consume(head_node);
        set
    }

    /// The heap (census inspection).
    pub fn heap(&self) -> &Heap<SetNode<W>, W> {
        &self.heap
    }

    /// The load strategy this instance was built with.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Atomically swings `pred.next` from `curr` to `new` while
    /// validating that `pred` is still unmarked — the DCAS that replaces
    /// Harris's pointer tagging.
    ///
    /// Under [`Strategy::DeferredInc`] the displaced reference (`curr`)
    /// is released through the grace-period retire queue instead of
    /// eagerly: a pending `+1` appended by a pinned reader is *covered*
    /// by the field unit we displace here, so that unit must outlive
    /// every pin that could have observed it (§5.13).
    fn swing(
        &self,
        pred: &Local<SetNode<W>, W>,
        curr: Option<&Local<SetNode<W>, W>>,
        new: Option<&Local<SetNode<W>, W>>,
    ) -> bool {
        // Safety: `pred` is a counted local reference, so `pred.marked`
        // is a cell in a live object for the duration of the call, as
        // `dcas_ptr_word` requires; `curr`/`new` are caller-held counted
        // references (or null).
        unsafe {
            if self.strategy == Strategy::DeferredInc {
                lfrc_core::ops::dcas_ptr_word_retire(
                    &pred.next,
                    &pred.marked,
                    Local::option_as_raw(curr),
                    0,
                    Local::option_as_raw(new),
                    0,
                )
            } else {
                lfrc_core::ops::dcas_ptr_word(
                    &pred.next,
                    &pred.marked,
                    Local::option_as_raw(curr),
                    0,
                    Local::option_as_raw(new),
                    0,
                )
            }
        }
    }

    /// Finds the first node with key ≥ `ekey` (encoded), returning
    /// ⟨pred, curr⟩ with `pred.key < ekey ≤ curr.key`, unlinking any
    /// marked nodes encountered on the way.
    fn find(&self, ekey: u64) -> (Local<SetNode<W>, W>, Local<SetNode<W>, W>) {
        'retry: loop {
            let mut pred = self.head.load().expect("head sentinel");
            let mut curr = pred.next.load().expect("tail sentinel terminates");
            loop {
                // Help: physically remove logically deleted nodes.
                while curr.marked.load() == 1 {
                    let succ = curr.next.load().expect("marked node precedes tail");
                    if !self.swing(&pred, Some(&curr), Some(&succ)) {
                        // pred moved on or got marked: restart.
                        continue 'retry;
                    }
                    curr = succ;
                }
                if curr.key >= ekey {
                    return (pred, curr);
                }
                let next = curr.next.load().expect("tail terminates");
                pred = curr;
                curr = next;
            }
        }
    }

    /// Inserts `key`; `false` if already present.
    pub fn insert(&self, key: u64) -> bool {
        let ekey = encode_key(key);
        loop {
            let (pred, curr) = self.find(ekey);
            if curr.key == ekey {
                return false;
            }
            let node = self.heap.alloc(SetNode {
                key: ekey,
                marked: W::new(0),
                next: PtrField::null(),
            });
            node.next.store(Some(&curr));
            if self.swing(&pred, Some(&curr), Some(&node)) {
                return true;
            }
            // Lost a race: `node` drops here and is freed immediately.
        }
    }

    /// Removes `key`; `false` if absent.
    pub fn remove(&self, key: u64) -> bool {
        let ekey = encode_key(key);
        loop {
            let (pred, curr) = self.find(ekey);
            if curr.key != ekey {
                return false;
            }
            // Logical deletion; the mark also freezes `curr.next`
            // (every writer validates the mark via DCAS).
            if !curr.marked.compare_and_swap(0, 1) {
                // Another remover got it first; re-find (we will observe
                // either the unlink or the mark and return false).
                continue;
            }
            // Best-effort physical unlink; finds will help if we fail.
            let succ = curr.next.load().expect("marked node precedes tail");
            let _ = self.swing(&pred, Some(&curr), Some(&succ));
            return true;
        }
    }

    /// Membership test (read-only traversal; does not help unlink).
    ///
    /// Dispatches on the instance [`Strategy`]: counted `LFRCLoad` hops
    /// for `Dcas`/`DeferredDec`, deferred-increment hops (§5.13) for
    /// `DeferredInc`.
    pub fn contains(&self, key: u64) -> bool {
        let ekey = encode_key(key);
        if self.strategy == Strategy::DeferredInc {
            self.contains_inc(ekey)
        } else {
            self.contains_dcas(ekey)
        }
    }

    fn contains_dcas(&self, ekey: u64) -> bool {
        let mut curr = self.head.load().expect("head sentinel");
        while curr.key < ekey {
            let next = curr.next.load().expect("tail terminates");
            curr = next;
        }
        curr.key == ekey && curr.marked.load() == 0
    }

    /// Deferred-increment traversal: one plain load + one thread-local
    /// append per hop, no DCAS, no count traffic.
    ///
    /// No validation and no restarts: on an exclusively-`DeferredInc`
    /// instance every displaced field unit is grace-retired (see
    /// [`swing`](Self::swing)), so any node reached inside this pin stays
    /// allocated with `rc ≥ 1` for the whole pin and a null link is
    /// always a genuine tail — unlike the §5.9 uncounted path, which must
    /// re-check `ref_count` after every suspicious read.
    fn contains_inc(&self, ekey: u64) -> bool {
        defer::pinned(|pin| {
            let mut curr = self.head.load_counted_inc(pin).expect("head sentinel");
            while curr.key < ekey {
                let next = curr.next.load_counted_inc(pin).expect("tail terminates");
                curr = next;
            }
            curr.key == ekey && curr.marked.load() == 0
        })
    }

    /// Number of live (unmarked, reachable) keys — O(n) diagnostic.
    pub fn len(&self) -> usize {
        let mut n = 0;
        let mut curr = self.head.load().expect("head sentinel");
        loop {
            let next = curr.next.load();
            let Some(next) = next else { break };
            if next.key != TAIL_KEY && next.marked.load() == 0 {
                n += 1;
            }
            curr = next;
        }
        n
    }

    /// `true` if no live keys are present.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// The head root releases its reference on drop; the chain (including the
// sentinels and any still-linked marked nodes) is acyclic and cascades.

#[cfg(test)]
mod tests {
    use super::*;
    use lfrc_core::McasWord;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Barrier;

    #[test]
    fn sequential_semantics() {
        let s: LfrcOrderedSet<McasWord> = LfrcOrderedSet::new();
        assert!(s.is_empty());
        assert!(s.insert(10));
        assert!(s.insert(5));
        assert!(s.insert(20));
        assert!(!s.insert(10), "duplicate insert must fail");
        assert_eq!(s.len(), 3);
        assert!(s.contains(5) && s.contains(10) && s.contains(20));
        assert!(!s.contains(15));
        assert!(s.remove(10));
        assert!(!s.remove(10), "double remove must fail");
        assert!(!s.contains(10));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn no_leaks_including_failed_inserts() {
        let census;
        {
            let s: LfrcOrderedSet<McasWord> = LfrcOrderedSet::new();
            census = std::sync::Arc::clone(s.heap().census());
            for k in 0..500 {
                s.insert(k % 100); // 400 duplicates allocate-and-free
            }
            for k in 0..100 {
                s.remove(k);
            }
            assert!(s.is_empty());
        }
        assert_eq!(census.live(), 0, "set leaked nodes");
    }

    #[test]
    fn marked_nodes_are_helped_out() {
        let s: LfrcOrderedSet<McasWord> = LfrcOrderedSet::new();
        for k in 0..50 {
            s.insert(k);
        }
        for k in (0..50).step_by(2) {
            s.remove(k);
        }
        // Traversal by an unrelated operation must observe only live keys.
        assert_eq!(s.len(), 25);
        for k in 0..50 {
            assert_eq!(s.contains(k), k % 2 == 1);
        }
    }

    #[test]
    fn concurrent_insert_remove_disjoint_ranges() {
        const THREADS: usize = 4;
        const PER: u64 = 500;
        let s: LfrcOrderedSet<McasWord> = LfrcOrderedSet::new();
        let barrier = Barrier::new(THREADS);
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let (s, barrier) = (&s, &barrier);
                scope.spawn(move || {
                    barrier.wait();
                    let base = t as u64 * PER;
                    for k in base..base + PER {
                        assert!(s.insert(k));
                    }
                    for k in (base..base + PER).step_by(2) {
                        assert!(s.remove(k));
                    }
                });
            }
        });
        assert_eq!(s.len(), THREADS * PER as usize / 2);
    }

    #[test]
    fn concurrent_contention_single_key_space() {
        // All threads fight over the same small key space; every
        // successful insert/remove must strictly alternate per key.
        const THREADS: usize = 6;
        const OPS: u64 = 2_000;
        const KEYS: u64 = 8;
        let s: LfrcOrderedSet<McasWord> = LfrcOrderedSet::new();
        let net = AtomicU64::new(0); // inserts minus removes (successful)
        let barrier = Barrier::new(THREADS);
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let (s, net, barrier) = (&s, &net, &barrier);
                scope.spawn(move || {
                    barrier.wait();
                    let mut x = t as u64 * 7919 + 1;
                    for _ in 0..OPS {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let k = x % KEYS;
                        if x & 1 == 0 {
                            if s.insert(k) {
                                net.fetch_add(1, Ordering::Relaxed);
                            }
                        } else if s.remove(k) {
                            net.fetch_sub(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(
            s.len() as u64,
            net.load(Ordering::Relaxed),
            "successful inserts minus removes must equal final size"
        );
    }

    /// Under `Strategy::DeferredInc` the logical free happens inside a
    /// grace-retired destroy, so the census drains only after the epoch
    /// advances — drive it with a bounded flush/quiesce loop.
    #[track_caller]
    fn assert_census_drains(census: &lfrc_core::Census) {
        let t0 = std::time::Instant::now();
        while census.live() != 0 && t0.elapsed() < std::time::Duration::from_secs(10) {
            lfrc_core::defer::flush_thread();
            lfrc_dcas::quiesce();
            std::thread::yield_now();
        }
        assert_eq!(census.live(), 0, "census did not drain");
    }

    #[test]
    fn lfrc_set_every_strategy_sequential() {
        for strategy in Strategy::ALL {
            let s: LfrcOrderedSet<McasWord> = LfrcOrderedSet::with_strategy(strategy);
            assert_eq!(s.strategy(), strategy);
            assert!(s.is_empty());
            assert!(s.insert(10));
            assert!(s.insert(5));
            assert!(s.insert(20));
            assert!(!s.insert(10), "duplicate insert must fail ({strategy})");
            assert_eq!(s.len(), 3);
            assert!(s.contains(5) && s.contains(10) && s.contains(20));
            assert!(!s.contains(15));
            assert!(s.remove(10));
            assert!(!s.remove(10), "double remove must fail ({strategy})");
            assert!(!s.contains(10));
            assert_eq!(s.len(), 2);
            let census = std::sync::Arc::clone(s.heap().census());
            drop(s);
            assert_census_drains(&census);
        }
    }

    #[test]
    fn lfrc_set_deferred_inc_concurrent_contention() {
        // Same contended workload as the default-strategy test, with
        // readers on the deferred-increment traversal racing the
        // grace-retired unlinks.
        const THREADS: usize = 4;
        const OPS: u64 = 1_500;
        const KEYS: u64 = 8;
        let s: LfrcOrderedSet<McasWord> = LfrcOrderedSet::with_strategy(Strategy::DeferredInc);
        let census = std::sync::Arc::clone(s.heap().census());
        let net = AtomicU64::new(0);
        let barrier = Barrier::new(THREADS);
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let (s, net, barrier) = (&s, &net, &barrier);
                scope.spawn(move || {
                    barrier.wait();
                    let mut x = t as u64 * 7919 + 1;
                    for _ in 0..OPS {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let k = x % KEYS;
                        match x % 3 {
                            0 => {
                                if s.insert(k) {
                                    net.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            1 => {
                                if s.remove(k) {
                                    net.fetch_sub(1, Ordering::Relaxed);
                                }
                            }
                            _ => {
                                let _ = s.contains(k);
                            }
                        }
                    }
                    lfrc_core::settle_thread();
                    lfrc_core::defer::flush_thread();
                });
            }
        });
        assert_eq!(s.len() as u64, net.load(Ordering::Relaxed));
        drop(s);
        assert_census_drains(&census);
    }

    #[test]
    fn drop_frees_everything_including_marked_stragglers() {
        let census;
        {
            let s: LfrcOrderedSet<McasWord> = LfrcOrderedSet::new();
            census = std::sync::Arc::clone(s.heap().census());
            for k in 0..200 {
                s.insert(k);
            }
            // Remove some without giving finds a chance to help unlink.
            for k in 0..200 {
                if k % 3 == 0 {
                    s.remove(k);
                }
            }
        }
        assert_eq!(census.live(), 0);
    }
}
