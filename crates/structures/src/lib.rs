//! Further lock-free structures in GC-dependent and LFRC-transformed
//! forms — the paper's claim of breadth, made testable.
//!
//! The paper (§2.1) claims the operation set "seems to be sufficient to
//! support a wide range of concurrent data structure implementations" and
//! mentions "several other candidate implementations in the pipeline".
//! This crate applies the six-step methodology to two classics beyond the
//! Snark deque:
//!
//! * the **Treiber stack** ([`stack`]), and
//! * the **Michael–Scott queue** ([`queue`]) — the paper's reference
//!   \[13\], which it cites as an example of a freelist-bound structure.
//!
//! Both are CAS-only algorithms, so their LFRC forms exercise `LFRCLoad`,
//! `LFRCStore`, and `LFRCCAS` (no DCAS beyond the one hidden inside
//! `LFRCLoad` — exactly the paper's point that the *load* is where DCAS
//! is indispensable).
//!
//! The GC-dependent originals run on our epoch-based reclamation
//! (`lfrc-reclaim`): for a stack or queue — unlike Snark — a node's
//! unlink *is* a single program point, so deferring its destruction to a
//! grace period is a faithful "assume GC" environment. The GC originals
//! use native atomics (they need no DCAS), which makes the E9 comparison
//! an *end-to-end* cost of GC-independence-via-LFRC, software-DCAS
//! emulation included.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod llsc_stack;
pub mod queue;
pub mod set;
pub mod skiplist;
pub mod stack;

pub use llsc_stack::LlscStack;
pub use queue::{ConcurrentQueue, GcQueue, LfrcQueue};
pub use set::LfrcOrderedSet;
pub use skiplist::LfrcSkipList;
pub use stack::{flush_thread, ConcurrentStack, GcStack, LfrcStack};
