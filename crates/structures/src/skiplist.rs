//! A lock-free skip-list set, LFRC-managed — the paper's \[16\] citation
//! (Pugh, *Concurrent maintenance of skip lists*) realized under the
//! methodology.
//!
//! Same design vocabulary as [`set`](crate::set): a node carries **one**
//! deleted-mark word, and every structural update at every level is a
//! pointer×word DCAS (`dcas_ptr_word`) that swings `pred.next[lvl]`
//! atomically with validating `pred.marked == 0` — no pointer tagging,
//! no per-level locks. Compared to Herlihy–Shavit's lock-free skip list
//! (which needs a mark bit in *each* level's pointer), DCAS lets one
//! mark govern the whole tower: a node is logically in the set iff it is
//! reachable at level 0 and unmarked.
//!
//! * `insert` — choose a geometric tower height, link level 0 (the
//!   linearization point), then index the upper levels best-effort;
//! * `remove` — CAS the mark (linearization point), then best-effort
//!   unlink at every level (finds help);
//! * `contains` — top-down descent whose load protocol follows the
//!   instance [`Strategy`]: the §5.9 deferred fast path (plain loads
//!   under a pin, rc-validated) for `DeferredDec`, the §5.13
//!   deferred-increment path (plain loads + TLS pending `+1`, *no*
//!   validation) for `DeferredInc`, and
//!   [`contains_counted`](LfrcSkipList::contains_counted) — one
//!   `LFRCLoad` DCAS per hop — for `Dcas`.
//!
//! Under `DeferredInc` every `swing` routes its displaced reference
//! through the grace-period retire queue
//! ([`dcas_ptr_word_retire`](lfrc_core::ops::dcas_ptr_word_retire)); that
//! cover invariant is what lets the increment-strategy descent drop the
//! rc-validation restarts.
//!
//! Garbage stays cycle-free: all tower pointers aim forward (toward
//! larger keys), so step 3 of the methodology holds untouched.

use std::fmt;

use lfrc_core::defer::{self, Borrowed};
use lfrc_core::{DcasWord, Heap, Links, Local, PtrField, SharedField, Strategy};

use crate::set::MAX_KEY;

/// Maximum tower height (supports ~2³² elements at p = 1/2).
pub const MAX_HEIGHT: usize = 16;

const HEAD_KEY: u64 = 0;
const TAIL_KEY: u64 = u64::MAX;

#[inline]
fn encode_key(k: u64) -> u64 {
    assert!(k < MAX_KEY, "skip-list keys must be < MAX_KEY");
    k + 1
}

/// A skip-list node: encoded key, one mark word, and a tower of links.
pub struct SkipNode<W: DcasWord> {
    key: u64,
    /// 0 = live, 1 = logically deleted (governs the whole tower).
    marked: W,
    /// `next[0]` is the full list; higher levels are the index.
    next: Vec<PtrField<SkipNode<W>, W>>,
}

impl<W: DcasWord> Links<W> for SkipNode<W> {
    fn for_each_link(&self, f: &mut dyn FnMut(&PtrField<Self, W>)) {
        for field in &self.next {
            f(field);
        }
    }
}

impl<W: DcasWord> fmt::Debug for SkipNode<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SkipNode")
            .field("key", &self.key)
            .field("height", &self.next.len())
            .field("marked", &(self.marked.load() == 1))
            .finish()
    }
}

impl<W: DcasWord> SkipNode<W> {
    fn new(key: u64, height: usize) -> Self {
        SkipNode {
            key,
            marked: W::new(0),
            next: (0..height).map(|_| PtrField::null()).collect(),
        }
    }
}

/// A lock-free ordered set backed by a skip list, memory-managed by LFRC.
///
/// # Example
///
/// ```
/// use lfrc_structures::LfrcSkipList;
/// use lfrc_core::McasWord;
///
/// let s: LfrcSkipList<McasWord> = LfrcSkipList::new();
/// for k in [5, 1, 9, 3] {
///     assert!(s.insert(k));
/// }
/// assert!(s.contains(3));
/// assert!(s.remove(3));
/// assert!(!s.contains(3));
/// assert_eq!(s.len(), 3);
/// ```
pub struct LfrcSkipList<W: DcasWord> {
    head: SharedField<SkipNode<W>, W>,
    heap: Heap<SkipNode<W>, W>,
    seed: std::sync::atomic::AtomicU64,
    strategy: Strategy,
}

impl<W: DcasWord> fmt::Debug for LfrcSkipList<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LfrcSkipList")
            .field("census", self.heap.census())
            .field("strategy", &self.strategy)
            .finish()
    }
}

impl<W: DcasWord> Default for LfrcSkipList<W> {
    fn default() -> Self {
        Self::new()
    }
}

type NodeRef<W> = Local<SkipNode<W>, W>;

impl<W: DcasWord> LfrcSkipList<W> {
    /// Creates an empty skip list (full-height head and tail sentinels)
    /// with the default [`Strategy`].
    pub fn new() -> Self {
        Self::with_strategy(Strategy::default())
    }

    /// Creates an empty skip list using `strategy` for its load protocol.
    pub fn with_strategy(strategy: Strategy) -> Self {
        let heap: Heap<SkipNode<W>, W> = Heap::new();
        let tail = heap.alloc(SkipNode::new(TAIL_KEY, MAX_HEIGHT));
        let head_node = heap.alloc(SkipNode::new(HEAD_KEY, MAX_HEIGHT));
        for lvl in 0..MAX_HEIGHT {
            head_node.next[lvl].store(Some(&tail));
        }
        drop(tail);
        let list = LfrcSkipList {
            head: SharedField::null(),
            heap,
            seed: std::sync::atomic::AtomicU64::new(0x853c49e6748fea9b),
            strategy,
        };
        list.head.store_consume(head_node);
        list
    }

    /// The heap (census inspection).
    pub fn heap(&self) -> &Heap<SkipNode<W>, W> {
        &self.heap
    }

    /// The load strategy this instance was built with.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Geometric tower height in `1..=MAX_HEIGHT` (p = 1/2).
    fn random_height(&self) -> usize {
        use std::sync::atomic::Ordering;
        let mut x = self.seed.fetch_add(0x9e3779b97f4a7c15, Ordering::Relaxed);
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58476d1ce4e5b9);
        x ^= x >> 27;
        ((x.trailing_ones() as usize) + 1).min(MAX_HEIGHT)
    }

    /// Swings `pred.next[lvl]` from `curr` to `new` iff `pred` is
    /// unmarked — the DCAS that replaces per-level pointer marks.
    ///
    /// Under [`Strategy::DeferredInc`] the displaced reference is
    /// grace-retired instead of eagerly released: a pinned reader's
    /// pending `+1` on `curr` may be covered by exactly the field unit
    /// this swing displaces, so the unit must outlive every pin that
    /// could have observed it (§5.13 cover invariant).
    fn swing(
        &self,
        pred: &NodeRef<W>,
        lvl: usize,
        curr: Option<&NodeRef<W>>,
        new: Option<&NodeRef<W>>,
    ) -> bool {
        // Safety: `pred` is a counted reference (its cells are alive);
        // `curr`/`new` are caller-held counted references or null.
        unsafe {
            if self.strategy == Strategy::DeferredInc {
                lfrc_core::ops::dcas_ptr_word_retire(
                    &pred.next[lvl],
                    &pred.marked,
                    Local::option_as_raw(curr),
                    0,
                    Local::option_as_raw(new),
                    0,
                )
            } else {
                lfrc_core::ops::dcas_ptr_word(
                    &pred.next[lvl],
                    &pred.marked,
                    Local::option_as_raw(curr),
                    0,
                    Local::option_as_raw(new),
                    0,
                )
            }
        }
    }

    /// Top-down search: fills `preds`/`succs` per level with
    /// `preds[l].key < ekey <= succs[l].key`, helping unlink marked nodes
    /// along the way. Returns `None` and retries internally on conflicts.
    #[allow(clippy::type_complexity)]
    fn find(&self, ekey: u64) -> (Vec<NodeRef<W>>, Vec<NodeRef<W>>) {
        'retry: loop {
            let head = self.head.load().expect("head sentinel");
            let mut preds: Vec<NodeRef<W>> = Vec::with_capacity(MAX_HEIGHT);
            let mut succs: Vec<NodeRef<W>> = Vec::with_capacity(MAX_HEIGHT);
            let mut pred = head;
            for lvl in (0..MAX_HEIGHT).rev() {
                let mut curr = match pred.next[lvl].load() {
                    Some(c) => c,
                    None => {
                        // A partially-linked tower level: treat as tail
                        // (only possible transiently during inserts).
                        continue 'retry;
                    }
                };
                loop {
                    // Help unlink marked nodes at this level.
                    while curr.marked.load() == 1 {
                        let succ = match curr.next[lvl].load() {
                            Some(s) => s,
                            None => continue 'retry,
                        };
                        if !self.swing(&pred, lvl, Some(&curr), Some(&succ)) {
                            continue 'retry;
                        }
                        curr = succ;
                    }
                    if curr.key >= ekey {
                        break;
                    }
                    let next = match curr.next[lvl].load() {
                        Some(n) => n,
                        None => continue 'retry,
                    };
                    pred = curr;
                    curr = next;
                }
                preds.push(pred.clone());
                succs.push(curr);
                // `pred` carries down to the next level.
            }
            // Stored top-down; reverse so index = level.
            preds.reverse();
            succs.reverse();
            return (preds, succs);
        }
    }

    /// Inserts `key`; `false` if already present.
    pub fn insert(&self, key: u64) -> bool {
        let ekey = encode_key(key);
        let height = self.random_height();
        loop {
            let (preds, succs) = self.find(ekey);
            if succs[0].key == ekey {
                return false;
            }
            let node = self.heap.alloc(SkipNode::new(ekey, height));
            // Prepare the whole tower before publication.
            for (lvl, succ) in succs.iter().enumerate().take(height) {
                node.next[lvl].store(Some(succ));
            }
            // Level 0 is the linearization point.
            if !self.swing(&preds[0], 0, Some(&succs[0]), Some(&node)) {
                continue; // node drops and is freed; retry from scratch
            }
            // Index the upper levels (best-effort; re-find on conflict).
            for lvl in 1..height {
                loop {
                    if node.marked.load() == 1 {
                        return true; // concurrently removed: stop indexing
                    }
                    let (preds, succs) = self.find(ekey);
                    if succs
                        .get(lvl)
                        .map(|s| Local::ptr_eq(s, &node))
                        .unwrap_or(false)
                    {
                        break; // someone (or an earlier pass) linked it
                    }
                    // Retarget this level's forward pointer, then link.
                    // This store may displace an earlier retarget's
                    // reference eagerly — safe under every strategy:
                    // `node.next[lvl]` is unreachable to readers until
                    // the swing below publishes it at this level, so the
                    // displaced unit covers no pending increment.
                    node.next[lvl].store(Some(&succs[lvl]));
                    if self.swing(&preds[lvl], lvl, Some(&succs[lvl]), Some(&node)) {
                        break;
                    }
                }
            }
            return true;
        }
    }

    /// Removes `key`; `false` if absent.
    pub fn remove(&self, key: u64) -> bool {
        let ekey = encode_key(key);
        loop {
            let (_preds, succs) = self.find(ekey);
            if succs[0].key != ekey {
                return false;
            }
            let victim = &succs[0];
            // Linearization point: the mark.
            if !victim.marked.compare_and_swap(0, 1) {
                // Another remover got it; re-find to observe the unlink.
                continue;
            }
            // Best-effort physical unlink at every level (top-down);
            // concurrent finds help with whatever we miss.
            let _ = self.find(ekey);
            return true;
        }
    }

    /// Membership test, dispatching on the instance [`Strategy`]:
    ///
    /// * `Dcas` → [`contains_counted`](Self::contains_counted) (one
    ///   `LFRCLoad` DCAS per hop, the paper-faithful baseline);
    /// * `DeferredDec` → the §5.9 uncounted fast path (plain loads,
    ///   rc-validated, restart on suspicion);
    /// * `DeferredInc` → the §5.13 deferred-increment path (plain loads
    ///   plus a thread-local pending `+1` per hop, no validation at all).
    pub fn contains(&self, key: u64) -> bool {
        match self.strategy {
            Strategy::Dcas => self.contains_counted(key),
            Strategy::DeferredDec => self.contains_deferred(key),
            Strategy::DeferredInc => self.contains_inc(key),
        }
    }

    /// Membership test — the deferred fast path (DESIGN.md §5.9).
    ///
    /// The whole traversal runs inside one [`defer::pinned`] scope with
    /// **plain pointer loads**: no DCAS, no count traffic per hop — versus
    /// one `LFRCLoad` DCAS per hop for [`contains_counted`]. A hop may
    /// land on a node that was concurrently freed (the pin keeps its
    /// memory mapped); soundness comes from validation, not counts:
    ///
    /// * a null link may be a harvested field on a freed node — reading a
    ///   nonzero [`Borrowed::ref_count`] *after* the read proves the null
    ///   was genuine, otherwise restart;
    /// * at a key match, a nonzero count after the match proves `curr`
    ///   was a real, reachable node when its key was read.
    ///
    /// Keys are immutable payload (readable even on a freed node), so the
    /// comparisons in between need no validation of their own.
    pub fn contains_deferred(&self, key: u64) -> bool {
        let ekey = encode_key(key);
        defer::pinned(|pin| 'restart: loop {
            let Some(mut pred) = self.head.load_deferred(pin) else {
                return false; // only during teardown
            };
            for lvl in (0..MAX_HEIGHT).rev() {
                let mut curr = match pred.next[lvl].load_deferred(pin) {
                    Some(c) => c,
                    None => {
                        if Borrowed::ref_count(&pred) == 0 {
                            continue 'restart; // harvested, not "level empty"
                        }
                        continue;
                    }
                };
                while curr.key < ekey {
                    let next = match curr.next[lvl].load_deferred(pin) {
                        Some(n) => n,
                        None => {
                            if Borrowed::ref_count(&curr) == 0 {
                                continue 'restart;
                            }
                            break;
                        }
                    };
                    pred = curr;
                    curr = next;
                }
                if curr.key == ekey {
                    if Borrowed::ref_count(&curr) == 0 {
                        continue 'restart; // freed under us; re-traverse
                    }
                    return curr.marked.load() == 0;
                }
            }
            return false;
        })
    }

    /// Membership test on the deferred-increment path (DESIGN.md §5.13):
    /// a plain load plus one thread-local pending-`+1` append per hop.
    ///
    /// No `ref_count` validation and no restarts, unlike
    /// [`contains_deferred`]: on an exclusively-`DeferredInc` instance
    /// every displaced field unit is grace-retired (see
    /// [`swing`](Self::swing)), so a node reached inside this pin keeps
    /// `rc ≥ 1` for the whole pin and a null link is always a genuine
    /// tail / unlinked level — never a harvested field on a freed node.
    pub fn contains_inc(&self, key: u64) -> bool {
        let ekey = encode_key(key);
        defer::pinned(|pin| {
            let Some(mut pred) = self.head.load_counted_inc(pin) else {
                return false; // only during teardown
            };
            for lvl in (0..MAX_HEIGHT).rev() {
                let mut curr = match pred.next[lvl].load_counted_inc(pin) {
                    Some(c) => c,
                    None => continue, // genuinely unlinked level: descend
                };
                while curr.key < ekey {
                    let next = match curr.next[lvl].load_counted_inc(pin) {
                        Some(n) => n,
                        None => break, // genuine end of this level
                    };
                    pred = curr;
                    curr = next;
                }
                if curr.key == ekey {
                    return curr.marked.load() == 0;
                }
            }
            false
        })
    }

    /// Membership test via counted loads (`LFRCLoad` per hop) — the
    /// baseline the deferred paths are measured against in experiment
    /// E10.
    pub fn contains_counted(&self, key: u64) -> bool {
        let ekey = encode_key(key);
        let mut pred = self.head.load().expect("head sentinel");
        for lvl in (0..MAX_HEIGHT).rev() {
            let mut curr = match pred.next[lvl].load() {
                Some(c) => c,
                None => continue,
            };
            while curr.key < ekey {
                let next = match curr.next[lvl].load() {
                    Some(n) => n,
                    None => break,
                };
                pred = curr;
                curr = next;
            }
            if curr.key == ekey {
                return curr.marked.load() == 0;
            }
        }
        false
    }

    /// Bounded ascending range scan: up to `limit` live keys `>= start`,
    /// in key order.
    ///
    /// The descent and the level-0 walk both use **counted** loads
    /// (`LFRCLoad` DCAS per hop), which are sound under every
    /// [`Strategy`] — each hop holds a real count on the node it visits,
    /// so a concurrent remove can unlink but never free a node mid-walk.
    /// The scan is not an atomic snapshot: each returned key was live at
    /// the moment its node was inspected, which is the usual guarantee
    /// for lock-free range queries (keys inserted or removed while the
    /// walk passes them may or may not appear).
    pub fn scan(&self, start: u64, limit: usize) -> Vec<u64> {
        if limit == 0 {
            return Vec::new();
        }
        let estart = encode_key(start);
        // Counted top-down descent (as in `contains_counted`) to reach
        // the last node with key < estart without walking the full list.
        let mut pred = self.head.load().expect("head sentinel");
        for lvl in (0..MAX_HEIGHT).rev() {
            let mut curr = match pred.next[lvl].load() {
                Some(c) => c,
                None => continue,
            };
            while curr.key < estart {
                let next = match curr.next[lvl].load() {
                    Some(n) => n,
                    None => break,
                };
                pred = curr;
                curr = next;
            }
        }
        // Level-0 walk from pred, collecting live in-range keys.
        let mut out = Vec::with_capacity(limit.min(64));
        let mut curr = pred;
        loop {
            let next = match curr.next[0].load() {
                Some(n) => n,
                None => break,
            };
            if next.key == TAIL_KEY {
                break;
            }
            if next.key >= estart && next.marked.load() == 0 {
                out.push(next.key - 1); // decode
                if out.len() == limit {
                    break;
                }
            }
            curr = next;
        }
        out
    }

    /// Number of live keys (O(n) level-0 walk; diagnostics).
    pub fn len(&self) -> usize {
        let mut n = 0;
        let mut curr = self.head.load().expect("head sentinel");
        loop {
            let next = curr.next[0].load();
            let Some(next) = next else { break };
            if next.key != TAIL_KEY && next.marked.load() == 0 {
                n += 1;
            }
            curr = next;
        }
        n
    }

    /// `true` if no live keys are present.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfrc_core::McasWord;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Barrier;

    #[test]
    fn sequential_semantics() {
        let s: LfrcSkipList<McasWord> = LfrcSkipList::new();
        assert!(s.is_empty());
        for k in [50, 10, 90, 30, 70] {
            assert!(s.insert(k));
        }
        assert!(!s.insert(50));
        assert_eq!(s.len(), 5);
        for k in [10, 30, 50, 70, 90] {
            assert!(s.contains(k));
        }
        assert!(!s.contains(40));
        assert!(s.remove(50));
        assert!(!s.remove(50));
        assert!(!s.contains(50));
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn large_sequential_no_leak() {
        let census;
        {
            let s: LfrcSkipList<McasWord> = LfrcSkipList::new();
            census = std::sync::Arc::clone(s.heap().census());
            for k in 0..2_000u64 {
                s.insert((k * 2_654_435_761) % 100_000);
            }
            let before = s.len();
            assert!(before > 1_500, "hash spread should mostly be distinct");
            for k in 0..2_000u64 {
                s.remove((k * 2_654_435_761) % 100_000);
            }
            assert!(s.is_empty());
        }
        assert_eq!(census.live(), 0, "skip list leaked");
    }

    #[test]
    fn towers_index_correctly() {
        // Insert ascending keys; contains must find every one through the
        // multi-level descent (exercises upper-level links).
        let s: LfrcSkipList<McasWord> = LfrcSkipList::new();
        for k in 0..512u64 {
            s.insert(k);
        }
        for k in 0..512u64 {
            assert!(s.contains(k), "lost key {k}");
        }
        assert_eq!(s.len(), 512);
    }

    #[test]
    fn concurrent_disjoint_ranges() {
        const THREADS: usize = 4;
        const PER: u64 = 400;
        let s: LfrcSkipList<McasWord> = LfrcSkipList::new();
        let barrier = Barrier::new(THREADS);
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let (s, barrier) = (&s, &barrier);
                scope.spawn(move || {
                    barrier.wait();
                    let base = t as u64 * PER;
                    for k in base..base + PER {
                        assert!(s.insert(k));
                    }
                    for k in (base..base + PER).step_by(2) {
                        assert!(s.remove(k));
                    }
                });
            }
        });
        assert_eq!(s.len(), THREADS * PER as usize / 2);
        for k in 0..THREADS as u64 * PER {
            assert_eq!(s.contains(k), k % 2 == 1, "key {k}");
        }
    }

    #[test]
    fn concurrent_contended_key_space() {
        const THREADS: usize = 4;
        const OPS: u64 = 1_000;
        const KEYS: u64 = 16;
        let s: LfrcSkipList<McasWord> = LfrcSkipList::new();
        let net = AtomicU64::new(0);
        let barrier = Barrier::new(THREADS);
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let (s, net, barrier) = (&s, &net, &barrier);
                scope.spawn(move || {
                    barrier.wait();
                    let mut x = (t as u64).wrapping_mul(0x9e3779b97f4a7c15) | 1;
                    for _ in 0..OPS {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let k = x % KEYS;
                        if x & 1 == 0 {
                            if s.insert(k) {
                                net.fetch_add(1, Ordering::Relaxed);
                            }
                        } else if s.remove(k) {
                            net.fetch_sub(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(s.len() as u64, net.load(Ordering::Relaxed));
    }

    #[test]
    fn deferred_and_counted_contains_agree() {
        let s: LfrcSkipList<McasWord> = LfrcSkipList::new();
        for k in 0..256u64 {
            s.insert(k);
        }
        for k in (0..256u64).step_by(3) {
            s.remove(k);
        }
        // Quiescent: the deferred traversal and the counted baseline must
        // answer identically for every key.
        for k in 0..300u64 {
            assert_eq!(s.contains(k), s.contains_counted(k), "key {k}");
        }
    }

    #[test]
    fn deferred_contains_survives_concurrent_churn() {
        // Readers on the deferred path race inserts/removes that free
        // nodes mid-traversal; the rc validation must keep every answer
        // plausible (no panic, no wrong answer for keys nobody touches).
        const STABLE: u64 = 999; // outside the churned range
        let s: LfrcSkipList<McasWord> = LfrcSkipList::new();
        s.insert(STABLE);
        let barrier = Barrier::new(3);
        std::thread::scope(|scope| {
            for _ in 0..2 {
                let (s, barrier) = (&s, &barrier);
                scope.spawn(move || {
                    barrier.wait();
                    for round in 0..60 {
                        for k in 0..48u64 {
                            s.insert(k);
                        }
                        for k in 0..48u64 {
                            s.remove(k);
                        }
                        let _ = round;
                    }
                });
            }
            let (s, barrier) = (&s, &barrier);
            scope.spawn(move || {
                barrier.wait();
                for _ in 0..4_000 {
                    assert!(s.contains(STABLE), "stable key lost mid-churn");
                    let _ = s.contains(17); // churned key: any answer is fine
                }
            });
        });
        assert!(s.contains(STABLE));
    }

    /// Under `Strategy::DeferredInc` the logical free happens inside a
    /// grace-retired destroy, so the census drains only after the epoch
    /// advances — drive it with a bounded flush/quiesce loop.
    #[track_caller]
    fn assert_census_drains(census: &lfrc_core::Census) {
        let t0 = std::time::Instant::now();
        while census.live() != 0 && t0.elapsed() < std::time::Duration::from_secs(10) {
            lfrc_core::defer::flush_thread();
            lfrc_dcas::quiesce();
            std::thread::yield_now();
        }
        assert_eq!(census.live(), 0, "census did not drain");
    }

    #[test]
    fn lfrc_skiplist_every_strategy_sequential() {
        for strategy in Strategy::ALL {
            let s: LfrcSkipList<McasWord> = LfrcSkipList::with_strategy(strategy);
            assert_eq!(s.strategy(), strategy);
            for k in [50, 10, 90, 30, 70] {
                assert!(s.insert(k), "{strategy}");
            }
            assert!(!s.insert(50), "{strategy}");
            assert_eq!(s.len(), 5);
            for k in [10, 30, 50, 70, 90] {
                assert!(s.contains(k), "{strategy}: key {k}");
            }
            assert!(!s.contains(40), "{strategy}");
            assert!(s.remove(50), "{strategy}");
            assert!(!s.contains(50), "{strategy}");
            // All three traversal protocols agree on a quiescent list.
            for k in 0..100u64 {
                assert_eq!(s.contains_counted(k), s.contains_deferred(k), "key {k}");
                assert_eq!(s.contains_counted(k), s.contains_inc(k), "key {k}");
            }
            let census = std::sync::Arc::clone(s.heap().census());
            drop(s);
            assert_census_drains(&census);
        }
    }

    #[test]
    fn lfrc_skiplist_deferred_inc_contains_survives_concurrent_churn() {
        // The §5.13 traversal races inserts/removes whose unlinks are
        // grace-retired; stable keys must never be lost and nothing may
        // trip a canary (the cover invariant keeps every visited node
        // alive for the duration of the pin).
        const STABLE: u64 = 999;
        let s: LfrcSkipList<McasWord> = LfrcSkipList::with_strategy(Strategy::DeferredInc);
        let census = std::sync::Arc::clone(s.heap().census());
        s.insert(STABLE);
        let barrier = Barrier::new(3);
        std::thread::scope(|scope| {
            for _ in 0..2 {
                let (s, barrier) = (&s, &barrier);
                scope.spawn(move || {
                    barrier.wait();
                    for _ in 0..60 {
                        for k in 0..48u64 {
                            s.insert(k);
                        }
                        for k in 0..48u64 {
                            s.remove(k);
                        }
                    }
                    lfrc_core::settle_thread();
                    lfrc_core::defer::flush_thread();
                });
            }
            let (s, barrier) = (&s, &barrier);
            scope.spawn(move || {
                barrier.wait();
                for _ in 0..4_000 {
                    assert!(s.contains(STABLE), "stable key lost mid-churn");
                    let _ = s.contains(17); // churned key: any answer is fine
                }
                lfrc_core::settle_thread();
                lfrc_core::defer::flush_thread();
            });
        });
        assert!(s.contains(STABLE));
        drop(s);
        assert_census_drains(&census);
    }

    #[test]
    fn scan_returns_ordered_live_range() {
        let s: LfrcSkipList<McasWord> = LfrcSkipList::new();
        for k in (0..100u64).rev() {
            s.insert(k * 10);
        }
        s.remove(40);
        assert_eq!(s.scan(25, 4), vec![30, 50, 60, 70]);
        assert_eq!(s.scan(30, 3), vec![30, 50, 60]);
        assert_eq!(s.scan(0, 2), vec![0, 10]);
        // Past the end: empty, not panic.
        assert_eq!(s.scan(991, 8), Vec::<u64>::new());
        // limit 0 and oversized limits.
        assert_eq!(s.scan(0, 0), Vec::<u64>::new());
        assert_eq!(s.scan(960, usize::MAX), vec![960, 970, 980, 990]);
    }

    #[test]
    fn scan_every_strategy_matches_contains() {
        for strategy in Strategy::ALL {
            let s: LfrcSkipList<McasWord> = LfrcSkipList::with_strategy(strategy);
            for k in 0..64u64 {
                s.insert(k * 3);
            }
            for k in (0..64u64).step_by(2) {
                s.remove(k * 3);
            }
            let got = s.scan(0, usize::MAX);
            let want: Vec<u64> = (0..64u64).filter(|k| k % 2 == 1).map(|k| k * 3).collect();
            assert_eq!(got, want, "{strategy}");
            let census = std::sync::Arc::clone(s.heap().census());
            drop(s);
            assert_census_drains(&census);
        }
    }

    #[test]
    fn drop_frees_everything() {
        let census;
        {
            let s: LfrcSkipList<McasWord> = LfrcSkipList::new();
            census = std::sync::Arc::clone(s.heap().census());
            for k in 0..500 {
                s.insert(k);
            }
            for k in (0..500).step_by(3) {
                s.remove(k);
            }
        }
        assert_eq!(census.live(), 0);
    }
}
