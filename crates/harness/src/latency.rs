//! Fixed-bucket latency histograms for tail-latency experiments.
//!
//! Lock-freedom's practical promise is not mean throughput but the
//! *tail*: no operation ever waits on a preempted peer. A histogram with
//! logarithmic buckets (doubling widths from 2⁰ ns) costs one atomic
//! increment per sample, so it can sit inside a measured loop without
//! distorting it. Merging and quantile extraction happen offline.
//!
//! **Deprecated:** this module's [`LatencyHistogram`] has a factor-of-two
//! quantile resolution. [`lfrc_obs::hist::Histogram`] supersedes it with
//! log-linear buckets (16 linear sub-buckets per doubling, ≤6.25 %
//! relative quantile error), mergeable snapshots, diffing, and
//! Prometheus rendering — see the `new_histogram_beats_log2_quantiles`
//! test below for the measured difference. Only [`human_ns`] remains
//! un-deprecated here.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Number of doubling buckets: covers 1 ns .. ~2⁶³ ns.
const BUCKETS: usize = 64;

/// A concurrent log₂-bucket latency histogram (nanoseconds).
///
/// # Example
///
/// ```
/// #![allow(deprecated)]
/// use lfrc_harness::latency::LatencyHistogram;
///
/// let h = LatencyHistogram::new();
/// for ns in [10, 20, 40, 80, 10_000] {
///     h.record_ns(ns);
/// }
/// assert_eq!(h.count(), 5);
/// assert!(h.quantile_ns(0.5) <= h.quantile_ns(0.99));
/// ```
#[deprecated(
    since = "0.1.0",
    note = "use lfrc_obs::hist::Histogram — log-linear buckets (≤6.25 % \
            relative quantile error vs. this type's factor of two), \
            mergeable/diffable snapshots, Prometheus rendering"
)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    max_ns: AtomicU64,
}

#[allow(deprecated)]
impl fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count())
            .field("p50_ns", &self.quantile_ns(0.5))
            .field("p99_ns", &self.quantile_ns(0.99))
            .field("max_ns", &self.max_ns())
            .finish()
    }
}

#[allow(deprecated)]
impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

#[allow(deprecated)]
impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Records one latency sample, in nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        let bucket = (64 - ns.max(1).leading_zeros() as usize - 1).min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Times `f` and records its duration.
    pub fn time<R>(&self, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let r = f();
        self.record_ns(start.elapsed().as_nanos() as u64);
        r
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Acquire)
    }

    /// Largest sample seen (exact, unlike the bucketed quantiles).
    pub fn max_ns(&self) -> u64 {
        self.max_ns.load(Ordering::Acquire)
    }

    /// Approximate quantile (upper bound of the bucket containing it).
    ///
    /// `q` in `[0, 1]`; returns 0 for an empty histogram. Resolution is
    /// a factor of two — sufficient for the orders-of-magnitude contrasts
    /// the stall experiments draw.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((total as f64) * q.clamp(0.0, 1.0)).ceil() as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Acquire);
            if seen >= target {
                // Upper bound of bucket i (2^(i+1) - 1), clamped by the
                // exact maximum so quantiles never exceed a real sample.
                return (1u64 << (i + 1)).saturating_sub(1).min(self.max_ns());
            }
        }
        self.max_ns()
    }

    /// Fraction of samples at or above `threshold_ns` (bucket-resolution:
    /// counts every bucket whose *lower* bound reaches the threshold, so
    /// the estimate errs low by at most one bucket).
    pub fn fraction_at_or_above_ns(&self, threshold_ns: u64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let first_bucket = (64 - threshold_ns.max(1).leading_zeros() as usize).min(BUCKETS - 1);
        let above: u64 = self.buckets[first_bucket..]
            .iter()
            .map(|b| b.load(Ordering::Acquire))
            .sum();
        above as f64 / total as f64
    }

    /// Formats the standard quantile row used in experiment tables.
    pub fn summary(&self) -> String {
        format!(
            "p50={} p90={} p99={} p999={} max={}",
            human_ns(self.quantile_ns(0.5)),
            human_ns(self.quantile_ns(0.9)),
            human_ns(self.quantile_ns(0.99)),
            human_ns(self.quantile_ns(0.999)),
            human_ns(self.max_ns())
        )
    }
}

/// Human-readable nanoseconds (`835ns`, `1.2us`, `3.4ms`).
pub fn human_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns}ns"),
        1_000..=999_999 => format!("{:.1}us", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.1}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;

    /// SplitMix64 — the workspace's seeded PRNG of record (no rand crate).
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The migration's justification, measured: on the same seeded
    /// log-uniform latency sample (spanning ns to ms like real op/grace
    /// latencies), the log-linear `lfrc_obs::hist::Histogram` reports
    /// quantiles within its advertised 6.25 % of the exact sorted-sample
    /// answer, while this type's log₂ buckets land much further out.
    #[test]
    fn new_histogram_beats_log2_quantiles() {
        let old = LatencyHistogram::new();
        let new = lfrc_obs::hist::Histogram::new();
        let mut state = 0x0E16_00B5_u64 ^ 0x5EED;
        let mut exact: Vec<u64> = (0..20_000)
            .map(|_| {
                // Log-uniform over [2^6, 2^26) ns: exponent then mantissa.
                let r = splitmix64(&mut state);
                let major = 6 + (r % 20);
                let frac = splitmix64(&mut state) % (1u64 << major);
                (1u64 << major) + frac
            })
            .collect();
        for &v in &exact {
            old.record_ns(v);
            new.record(v);
        }
        exact.sort_unstable();
        let snap = new.snapshot();
        let mut worst_new = 0.0f64;
        let mut worst_old = 0.0f64;
        for q in [0.5, 0.9, 0.99] {
            let target = exact[((exact.len() as f64 * q).ceil() as usize - 1).min(exact.len() - 1)];
            let rel = |approx: u64| (approx as f64 - target as f64).abs() / target as f64;
            worst_new = worst_new.max(rel(snap.quantile_ns(q)));
            worst_old = worst_old.max(rel(old.quantile_ns(q)));
        }
        // Upper-bound reporting costs at most one sub-bucket (1/16) of
        // relative error; allow a hair for the ceil-rank discretization.
        assert!(
            worst_new <= 0.0625 + 0.01,
            "log-linear error {worst_new:.4} above advertised bound"
        );
        assert!(
            worst_old > worst_new,
            "log2 buckets ({worst_old:.4}) should be strictly coarser than \
             log-linear ({worst_new:.4})"
        );
    }

    #[test]
    fn quantiles_are_monotone() {
        let h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record_ns(i * 17);
        }
        let p50 = h.quantile_ns(0.5);
        let p90 = h.quantile_ns(0.9);
        let p99 = h.quantile_ns(0.99);
        assert!(p50 <= p90 && p90 <= p99);
        assert!(h.max_ns() >= p99);
        assert_eq!(h.count(), 1000);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_ns(0.99), 0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn bucket_bounds_contain_samples() {
        let h = LatencyHistogram::new();
        h.record_ns(1000);
        // p100 upper bound must be >= the sample.
        assert!(h.quantile_ns(1.0) >= 1000);
        // And within 2x (log2 resolution).
        assert!(h.quantile_ns(1.0) <= 2048);
    }

    #[test]
    fn concurrent_recording() {
        let h = LatencyHistogram::new();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..1000 {
                        h.record_ns(t * 1000 + i + 1);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
    }

    #[test]
    fn human_ns_formats() {
        assert_eq!(human_ns(835), "835ns");
        assert_eq!(human_ns(1_200), "1.2us");
        assert_eq!(human_ns(3_400_000), "3.4ms");
        assert_eq!(human_ns(2_000_000_000), "2.00s");
    }
}
