//! Latency formatting helpers.
//!
//! This module once hosted a log₂-bucket `LatencyHistogram`; that shim
//! is gone — `lfrc_obs::hist::Histogram` (log-linear buckets, ≤6.25 %
//! relative quantile error, mergeable snapshots, Prometheus rendering)
//! is the histogram of record, and every caller has been migrated.
//! What remains is the table formatter the experiment binaries share.

/// Human-readable nanoseconds (`835ns`, `1.2us`, `3.4ms`).
pub fn human_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns}ns"),
        1_000..=999_999 => format!("{:.1}us", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.1}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_ns_formats() {
        assert_eq!(human_ns(835), "835ns");
        assert_eq!(human_ns(1_200), "1.2us");
        assert_eq!(human_ns(3_400_000), "3.4ms");
        assert_eq!(human_ns(2_000_000_000), "2.00s");
    }
}
