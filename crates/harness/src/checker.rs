//! Invariant checking for concurrent runs.
//!
//! The central invariant (I4 in DESIGN.md): across a whole run,
//! `multiset(pushed) == multiset(popped) ⊎ multiset(drained)` — nothing
//! lost, nothing duplicated. Tracking full multisets would perturb the
//! measured loop, so the checker folds each value into order-insensitive
//! accumulators (count, sum, xor, and a weak polynomial hash); any single
//! lost or duplicated value changes at least the count/sum pair, and
//! value corruption is caught by xor with overwhelming probability.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Order-insensitive accumulator of a value multiset.
#[derive(Debug, Default)]
struct MultisetDigest {
    count: AtomicU64,
    sum: AtomicU64,
    xor: AtomicU64,
}

impl MultisetDigest {
    fn add(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.xor
            .fetch_xor(v.wrapping_mul(0x9e3779b97f4a7c15) | 1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.count.load(Ordering::Acquire),
            self.sum.load(Ordering::Acquire),
            self.xor.load(Ordering::Acquire),
        )
    }
}

/// Records pushes and pops of a run and verdicts conservation afterwards.
///
/// # Example
///
/// ```
/// use lfrc_harness::ConservationChecker;
///
/// let c = ConservationChecker::new();
/// c.pushed(7);
/// c.pushed(8);
/// c.popped(8);
/// c.popped(7);
/// c.verify().expect("conserved");
/// ```
#[derive(Debug, Default)]
pub struct ConservationChecker {
    pushed: MultisetDigest,
    popped: MultisetDigest,
}

/// A conservation violation: what diverged between pushes and pops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConservationError {
    /// (count, sum, xor) digest of pushed values.
    pub pushed: (u64, u64, u64),
    /// (count, sum, xor) digest of popped (+ drained) values.
    pub popped: (u64, u64, u64),
}

impl fmt::Display for ConservationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "conservation violated: pushed (n={}, sum={}, xor={:#x}) vs popped (n={}, sum={}, xor={:#x})",
            self.pushed.0, self.pushed.1, self.pushed.2, self.popped.0, self.popped.1, self.popped.2
        )
    }
}

impl std::error::Error for ConservationError {}

impl ConservationChecker {
    /// Creates an empty checker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a value handed to the structure.
    pub fn pushed(&self, v: u64) {
        self.pushed.add(v);
    }

    /// Records a value received back (including drain-phase values).
    pub fn popped(&self, v: u64) {
        self.popped.add(v);
    }

    /// Number of pushes recorded so far.
    pub fn pushed_count(&self) -> u64 {
        self.pushed.snapshot().0
    }

    /// Number of pops recorded so far.
    pub fn popped_count(&self) -> u64 {
        self.popped.snapshot().0
    }

    /// Checks that the pop multiset equals the push multiset.
    pub fn verify(&self) -> Result<(), ConservationError> {
        let pushed = self.pushed.snapshot();
        let popped = self.popped.snapshot();
        if pushed == popped {
            Ok(())
        } else {
            Err(ConservationError { pushed, popped })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_run_verifies() {
        let c = ConservationChecker::new();
        for v in 0..100 {
            c.pushed(v);
        }
        for v in (0..100).rev() {
            c.popped(v);
        }
        c.verify().unwrap();
    }

    #[test]
    fn lost_value_detected() {
        let c = ConservationChecker::new();
        c.pushed(1);
        c.pushed(2);
        c.popped(1);
        let err = c.verify().unwrap_err();
        assert_eq!(err.pushed.0, 2);
        assert_eq!(err.popped.0, 1);
        assert!(format!("{err}").contains("conservation violated"));
    }

    #[test]
    fn duplicated_value_detected() {
        let c = ConservationChecker::new();
        c.pushed(5);
        c.popped(5);
        c.popped(5);
        assert!(c.verify().is_err());
    }

    #[test]
    fn value_swap_detected_by_xor() {
        // Same count and — by construction — same sum, different values.
        let c = ConservationChecker::new();
        c.pushed(1);
        c.pushed(4);
        c.popped(2);
        c.popped(3);
        assert!(c.verify().is_err(), "xor digest must catch equal-sum swaps");
    }
}
