//! Deterministic workload generation.
//!
//! Experiments must be reproducible run-to-run, so all randomness flows
//! from seeded [`SplitMix64`] streams (one per thread, derived from the
//! experiment seed and the thread index).

use std::fmt;

/// A tiny, fast, seedable PRNG (SplitMix64) — deterministic workloads
/// without dragging a full RNG into the measured loop.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a stream from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 {
            state: seed.wrapping_add(0x9e3779b97f4a7c15),
        }
    }

    /// Derives an independent stream for a thread.
    pub fn for_thread(seed: u64, thread: usize) -> Self {
        let mut base = SplitMix64::new(seed ^ (thread as u64).wrapping_mul(0xff51afd7ed558ccd));
        base.next(); // decorrelate
        base
    }

    /// Next raw 64-bit value.
    #[allow(clippy::should_implement_trait)] // not an Iterator: infinite, never None
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` (bound > 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }

    /// Bernoulli draw with probability `percent`/100.
    pub fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

/// One deque operation of a generated workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DequeOp {
    /// Push a value on the left end.
    PushLeft(u64),
    /// Push a value on the right end.
    PushRight(u64),
    /// Pop from the left end.
    PopLeft,
    /// Pop from the right end.
    PopRight,
}

/// Operation mixes used by the throughput experiments (E2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mix {
    /// 50% pushes / 50% pops, uniformly random ends — general churn.
    Balanced,
    /// Push right, pop left — the deque as a FIFO pipeline.
    Fifo,
    /// Push right, pop right — the deque as a LIFO work pile
    /// (work-stealing owner end).
    Lifo,
}

impl Mix {
    /// All mixes, in table order.
    pub const ALL: [Mix; 3] = [Mix::Balanced, Mix::Fifo, Mix::Lifo];

    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            Mix::Balanced => "balanced-50/50",
            Mix::Fifo => "fifo(pushR/popL)",
            Mix::Lifo => "lifo(pushR/popR)",
        }
    }
}

impl fmt::Display for Mix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A per-thread deterministic stream of deque operations.
#[derive(Debug)]
pub struct DequeWorkload {
    rng: SplitMix64,
    mix: Mix,
    counter: u64,
    thread: u64,
}

impl DequeWorkload {
    /// Creates the stream for one thread of an experiment.
    pub fn new(seed: u64, thread: usize, mix: Mix) -> Self {
        DequeWorkload {
            rng: SplitMix64::for_thread(seed, thread),
            mix,
            counter: 0,
            thread: thread as u64,
        }
    }

    /// Next operation. Values are unique per (thread, op-index) so
    /// conservation checking can detect duplication.
    pub fn next_op(&mut self) -> DequeOp {
        self.counter += 1;
        // Unique, bounded value: thread in the high bits, counter low.
        let value = (self.thread << 40) | (self.counter & ((1 << 40) - 1));
        match self.mix {
            Mix::Balanced => match self.rng.below(4) {
                0 => DequeOp::PushLeft(value),
                1 => DequeOp::PushRight(value),
                2 => DequeOp::PopLeft,
                _ => DequeOp::PopRight,
            },
            Mix::Fifo => {
                if self.rng.chance(50) {
                    DequeOp::PushRight(value)
                } else {
                    DequeOp::PopLeft
                }
            }
            Mix::Lifo => {
                if self.rng.chance(50) {
                    DequeOp::PushRight(value)
                } else {
                    DequeOp::PopRight
                }
            }
        }
    }
}

/// One set operation of a generated workload (E10: read-heavy
/// traversals over the skiplist).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOp {
    /// Membership query.
    Contains(u64),
    /// Insert a key.
    Insert(u64),
    /// Remove a key.
    Remove(u64),
}

/// A per-thread deterministic stream of set operations with a
/// configurable read fraction.
///
/// Keys are drawn uniformly from `[0, key_space)`; `read_percent` of
/// the operations are [`SetOp::Contains`], the rest split evenly
/// between inserts and removes so the set size stays roughly stable.
#[derive(Debug)]
pub struct SetWorkload {
    rng: SplitMix64,
    read_percent: u64,
    key_space: u64,
}

impl SetWorkload {
    /// Creates the stream for one thread of an experiment.
    ///
    /// # Panics
    ///
    /// Panics if `read_percent > 100` or `key_space == 0`.
    pub fn new(seed: u64, thread: usize, read_percent: u64, key_space: u64) -> Self {
        assert!(read_percent <= 100, "read_percent is a percentage");
        assert!(key_space > 0, "key_space must be nonempty");
        SetWorkload {
            rng: SplitMix64::for_thread(seed, thread),
            read_percent,
            key_space,
        }
    }

    /// Next operation.
    pub fn next_op(&mut self) -> SetOp {
        let key = self.rng.below(self.key_space);
        if self.rng.chance(self.read_percent) {
            SetOp::Contains(key)
        } else if self.rng.chance(50) {
            SetOp::Insert(key)
        } else {
            SetOp::Remove(key)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn thread_streams_differ() {
        let mut a = SplitMix64::for_thread(7, 0);
        let mut b = SplitMix64::for_thread(7, 1);
        let same = (0..32).filter(|_| a.next() == b.next()).count();
        assert!(same < 2, "thread streams should be decorrelated");
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(1);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn workload_values_are_unique() {
        let mut w = DequeWorkload::new(3, 1, Mix::Balanced);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            if let DequeOp::PushLeft(v) | DequeOp::PushRight(v) = w.next_op() {
                assert!(seen.insert(v), "duplicate generated value {v}");
            }
        }
    }

    #[test]
    fn set_workload_respects_read_fraction() {
        let mut w = SetWorkload::new(11, 2, 90, 512);
        let mut reads = 0usize;
        for _ in 0..10_000 {
            match w.next_op() {
                SetOp::Contains(k) => {
                    assert!(k < 512);
                    reads += 1;
                }
                SetOp::Insert(k) | SetOp::Remove(k) => assert!(k < 512),
            }
        }
        // 90% nominal; allow generous slack for a 10k sample.
        assert!((8_500..=9_500).contains(&reads), "reads = {reads}");
    }

    #[test]
    fn set_workload_is_deterministic() {
        let mut a = SetWorkload::new(5, 1, 75, 64);
        let mut b = SetWorkload::new(5, 1, 75, 64);
        for _ in 0..1_000 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn fifo_mix_never_pops_right() {
        let mut w = DequeWorkload::new(3, 0, Mix::Fifo);
        for _ in 0..1_000 {
            let op = w.next_op();
            assert!(!matches!(op, DequeOp::PopRight | DequeOp::PushLeft(_)));
        }
    }
}
