//! Deterministic workload generation.
//!
//! Experiments must be reproducible run-to-run, so all randomness flows
//! from seeded [`SplitMix64`] streams (one per thread, derived from the
//! experiment seed and the thread index). Key skew comes from the
//! rejection-free [`Zipfian`] sampler (Gray et al.'s method, the one
//! YCSB uses), so hot-key workloads over millions of keys need no
//! external dependencies either.

use std::fmt;

/// A tiny, fast, seedable PRNG (SplitMix64) — deterministic workloads
/// without dragging a full RNG into the measured loop.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a stream from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 {
            state: seed.wrapping_add(0x9e3779b97f4a7c15),
        }
    }

    /// Derives an independent stream for a thread.
    pub fn for_thread(seed: u64, thread: usize) -> Self {
        let mut base = SplitMix64::new(seed ^ (thread as u64).wrapping_mul(0xff51afd7ed558ccd));
        base.next(); // decorrelate
        base
    }

    /// Next raw 64-bit value.
    #[allow(clippy::should_implement_trait)] // not an Iterator: infinite, never None
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` (bound > 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }

    /// Bernoulli draw with probability `percent`/100.
    pub fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

/// SplitMix64 finalizer: a bijective 64-bit mix used to scramble
/// zipfian ranks across the key space (YCSB's "scrambled zipfian").
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// A seeded, rejection-free zipfian **rank** sampler (Gray et al.,
/// *Quickly generating billion-record synthetic databases*, SIGMOD '94
/// — the algorithm behind YCSB's generator).
///
/// [`Zipfian::sample_rank`] draws rank `k` with probability
/// `k⁻ᶿ / ζ(n, θ)` (rank 0 most popular) using one uniform draw and a
/// handful of floating-point operations — no rejection loop, so the
/// cost is flat regardless of skew. Setup is O(n) (the harmonic sum
/// `ζ(n, θ)`), paid once per configuration and reused across threads
/// via `Clone`.
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    zetan: f64,
    alpha: f64,
    eta: f64,
    half_pow_theta: f64,
}

impl Zipfian {
    /// A sampler over ranks `[0, n)` with skew `theta` in `(0, 1)`
    /// (YCSB's default is 0.99; larger is more skewed).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is outside `(0, 1)`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "zipfian needs a nonempty rank space");
        assert!(
            theta > 0.0 && theta < 1.0,
            "theta must be in (0, 1), got {theta}"
        );
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(n.min(2), theta);
        // With n == 1 the eta denominator is 0; the sampler then always
        // returns rank 0, so any finite value works.
        let eta = if n == 1 {
            0.0
        } else {
            (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan)
        };
        Zipfian {
            n,
            theta,
            zetan,
            alpha: 1.0 / (1.0 - theta),
            eta,
            half_pow_theta: 0.5f64.powf(theta),
        }
    }

    /// The generalized harmonic number `ζ(n, θ) = Σ_{i=1..n} i⁻ᶿ`.
    fn zeta(n: u64, theta: f64) -> f64 {
        (1..=n).map(|i| (i as f64).powf(-theta)).sum()
    }

    /// Number of ranks.
    pub fn ranks(&self) -> u64 {
        self.n
    }

    /// Exact probability of rank `k` (tests, tables).
    pub fn pmf(&self, k: u64) -> f64 {
        assert!(k < self.n);
        ((k + 1) as f64).powf(-self.theta) / self.zetan
    }

    /// Draws a rank in `[0, n)`; rank 0 is the most popular.
    pub fn sample_rank(&self, rng: &mut SplitMix64) -> u64 {
        // 53-bit uniform in [0, 1).
        let u = (rng.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + self.half_pow_theta {
            return 1.min(self.n - 1);
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }
}

/// How workload keys are drawn from a key space.
#[derive(Debug, Clone)]
pub enum KeyDist {
    /// Uniform over `[0, n)`.
    Uniform(u64),
    /// Scrambled zipfian over `[0, n)`: a [`Zipfian`] rank pushed
    /// through a bijective 64-bit mix and reduced mod `n`, so the hot
    /// ranks land on arbitrary (but deterministic) keys spread across
    /// the space instead of clustering at 0 — YCSB's
    /// `ScrambledZipfianGenerator`.
    Zipfian(Zipfian),
}

impl KeyDist {
    /// Uniform keys over `[0, n)`.
    pub fn uniform(n: u64) -> KeyDist {
        assert!(n > 0, "key space must be nonempty");
        KeyDist::Uniform(n)
    }

    /// Scrambled-zipfian keys over `[0, n)` with skew `theta`.
    pub fn zipfian(n: u64, theta: f64) -> KeyDist {
        KeyDist::Zipfian(Zipfian::new(n, theta))
    }

    /// The key space size `n`.
    pub fn key_space(&self) -> u64 {
        match self {
            KeyDist::Uniform(n) => *n,
            KeyDist::Zipfian(z) => z.ranks(),
        }
    }

    /// Short label for tables (`uniform` / `zipf(0.99)`).
    pub fn label(&self) -> String {
        match self {
            KeyDist::Uniform(_) => "uniform".to_string(),
            KeyDist::Zipfian(z) => format!("zipf({:.2})", z.theta),
        }
    }

    /// Draws one key.
    #[inline]
    pub fn sample_key(&self, rng: &mut SplitMix64) -> u64 {
        match self {
            KeyDist::Uniform(n) => rng.below(*n),
            KeyDist::Zipfian(z) => mix64(z.sample_rank(rng)) % z.ranks(),
        }
    }
}

/// One deque operation of a generated workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DequeOp {
    /// Push a value on the left end.
    PushLeft(u64),
    /// Push a value on the right end.
    PushRight(u64),
    /// Pop from the left end.
    PopLeft,
    /// Pop from the right end.
    PopRight,
}

/// Operation mixes used by the throughput experiments (E2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mix {
    /// 50% pushes / 50% pops, uniformly random ends — general churn.
    Balanced,
    /// Push right, pop left — the deque as a FIFO pipeline.
    Fifo,
    /// Push right, pop right — the deque as a LIFO work pile
    /// (work-stealing owner end).
    Lifo,
}

impl Mix {
    /// All mixes, in table order.
    pub const ALL: [Mix; 3] = [Mix::Balanced, Mix::Fifo, Mix::Lifo];

    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            Mix::Balanced => "balanced-50/50",
            Mix::Fifo => "fifo(pushR/popL)",
            Mix::Lifo => "lifo(pushR/popR)",
        }
    }
}

impl fmt::Display for Mix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A per-thread deterministic stream of deque operations.
#[derive(Debug)]
pub struct DequeWorkload {
    rng: SplitMix64,
    mix: Mix,
    counter: u64,
    thread: u64,
}

impl DequeWorkload {
    /// Creates the stream for one thread of an experiment.
    pub fn new(seed: u64, thread: usize, mix: Mix) -> Self {
        DequeWorkload {
            rng: SplitMix64::for_thread(seed, thread),
            mix,
            counter: 0,
            thread: thread as u64,
        }
    }

    /// Next operation. Values are unique per (thread, op-index) so
    /// conservation checking can detect duplication.
    pub fn next_op(&mut self) -> DequeOp {
        self.counter += 1;
        // Unique, bounded value: thread in the high bits, counter low.
        let value = (self.thread << 40) | (self.counter & ((1 << 40) - 1));
        match self.mix {
            Mix::Balanced => match self.rng.below(4) {
                0 => DequeOp::PushLeft(value),
                1 => DequeOp::PushRight(value),
                2 => DequeOp::PopLeft,
                _ => DequeOp::PopRight,
            },
            Mix::Fifo => {
                if self.rng.chance(50) {
                    DequeOp::PushRight(value)
                } else {
                    DequeOp::PopLeft
                }
            }
            Mix::Lifo => {
                if self.rng.chance(50) {
                    DequeOp::PushRight(value)
                } else {
                    DequeOp::PopRight
                }
            }
        }
    }
}

/// One set operation of a generated workload (E10: read-heavy
/// traversals over the skiplist).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOp {
    /// Membership query.
    Contains(u64),
    /// Insert a key.
    Insert(u64),
    /// Remove a key.
    Remove(u64),
}

/// A per-thread deterministic stream of set operations with a
/// configurable read fraction.
///
/// Keys are drawn from a [`KeyDist`] (uniform from `[0, key_space)` by
/// default; use [`SetWorkload::with_dist`] for zipfian skew);
/// `read_percent` of the operations are [`SetOp::Contains`], the rest
/// split evenly between inserts and removes so the set size stays
/// roughly stable.
#[derive(Debug)]
pub struct SetWorkload {
    rng: SplitMix64,
    read_percent: u64,
    dist: KeyDist,
}

impl SetWorkload {
    /// Creates the stream for one thread of an experiment, with uniform
    /// keys over `[0, key_space)`.
    ///
    /// # Panics
    ///
    /// Panics if `read_percent > 100` or `key_space == 0`.
    pub fn new(seed: u64, thread: usize, read_percent: u64, key_space: u64) -> Self {
        Self::with_dist(seed, thread, read_percent, KeyDist::uniform(key_space))
    }

    /// Creates the stream with an explicit key distribution.
    ///
    /// # Panics
    ///
    /// Panics if `read_percent > 100`.
    pub fn with_dist(seed: u64, thread: usize, read_percent: u64, dist: KeyDist) -> Self {
        assert!(read_percent <= 100, "read_percent is a percentage");
        SetWorkload {
            rng: SplitMix64::for_thread(seed, thread),
            read_percent,
            dist,
        }
    }

    /// Next operation.
    pub fn next_op(&mut self) -> SetOp {
        let key = self.dist.sample_key(&mut self.rng);
        if self.rng.chance(self.read_percent) {
            SetOp::Contains(key)
        } else if self.rng.chance(50) {
            SetOp::Insert(key)
        } else {
            SetOp::Remove(key)
        }
    }
}

/// Operation mix knobs for a [`KvWorkload`].
///
/// `get_pct + scan_pct + batch_pct` must be ≤ 100; the remainder is
/// single-key writes, split evenly between puts and deletes (as are the
/// writes inside a batch) so the store size stays roughly stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvMix {
    /// Percentage of point reads ([`KvOp::Get`]).
    pub get_pct: u64,
    /// Percentage of bounded range scans ([`KvOp::Scan`]).
    pub scan_pct: u64,
    /// Percentage of batched multi-key writes ([`KvOp::Batch`]).
    pub batch_pct: u64,
    /// Keys per batch.
    pub batch_size: usize,
    /// Keys per scan.
    pub scan_limit: usize,
}

impl KvMix {
    /// The E17 headline mix: 90 % gets, 4 % scans, 2 % batches (of 16),
    /// 4 % single writes.
    pub const READ_HEAVY: KvMix = KvMix {
        get_pct: 90,
        scan_pct: 4,
        batch_pct: 2,
        batch_size: 16,
        scan_limit: 32,
    };

    /// A write-heavy contrast mix: 40 % gets, 4 % scans, 16 % batches.
    pub const WRITE_HEAVY: KvMix = KvMix {
        get_pct: 40,
        scan_pct: 4,
        batch_pct: 16,
        batch_size: 16,
        scan_limit: 32,
    };
}

/// One KV operation of a generated workload. Batch entries are
/// `(key, is_put)` pairs — the harness stays structure-agnostic, so the
/// driver maps them onto its store's write type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvOp {
    /// Point read.
    Get(u64),
    /// Single-key insert.
    Put(u64),
    /// Single-key remove.
    Delete(u64),
    /// Bounded range scan from `start`.
    Scan {
        /// First candidate key.
        start: u64,
        /// Maximum keys returned.
        limit: usize,
    },
    /// Batched multi-key write; `true` = put, `false` = delete.
    Batch(Vec<(u64, bool)>),
}

impl KvOp {
    /// Stable op-kind labels, indexed by [`KvOp::kind`] (soak runners
    /// key per-op-type latency histograms on this).
    pub const KINDS: [&'static str; 5] = ["get", "put", "delete", "scan", "batch"];

    /// Index into [`KvOp::KINDS`].
    pub fn kind(&self) -> usize {
        match self {
            KvOp::Get(_) => 0,
            KvOp::Put(_) => 1,
            KvOp::Delete(_) => 2,
            KvOp::Scan { .. } => 3,
            KvOp::Batch(_) => 4,
        }
    }
}

/// A per-thread deterministic stream of KV operations: mix knobs from
/// [`KvMix`], keys from a [`KeyDist`] (zipfian hot-key skew or uniform).
#[derive(Debug)]
pub struct KvWorkload {
    rng: SplitMix64,
    mix: KvMix,
    dist: KeyDist,
}

impl KvWorkload {
    /// Creates the stream for one thread.
    ///
    /// # Panics
    ///
    /// Panics if the mix percentages exceed 100, or a scan/batch share
    /// is given size 0.
    pub fn new(seed: u64, thread: usize, mix: KvMix, dist: KeyDist) -> Self {
        assert!(
            mix.get_pct + mix.scan_pct + mix.batch_pct <= 100,
            "mix percentages exceed 100"
        );
        assert!(mix.batch_pct == 0 || mix.batch_size > 0, "empty batches");
        assert!(mix.scan_pct == 0 || mix.scan_limit > 0, "empty scans");
        KvWorkload {
            rng: SplitMix64::for_thread(seed, thread),
            mix,
            dist,
        }
    }

    /// Next operation.
    pub fn next_op(&mut self) -> KvOp {
        let r = self.rng.below(100);
        let key = self.dist.sample_key(&mut self.rng);
        if r < self.mix.get_pct {
            KvOp::Get(key)
        } else if r < self.mix.get_pct + self.mix.scan_pct {
            KvOp::Scan {
                start: key,
                limit: self.mix.scan_limit,
            }
        } else if r < self.mix.get_pct + self.mix.scan_pct + self.mix.batch_pct {
            let mut writes = Vec::with_capacity(self.mix.batch_size);
            writes.push((key, self.rng.chance(50)));
            for _ in 1..self.mix.batch_size {
                let k = self.dist.sample_key(&mut self.rng);
                writes.push((k, self.rng.chance(50)));
            }
            KvOp::Batch(writes)
        } else if self.rng.chance(50) {
            KvOp::Put(key)
        } else {
            KvOp::Delete(key)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn thread_streams_differ() {
        let mut a = SplitMix64::for_thread(7, 0);
        let mut b = SplitMix64::for_thread(7, 1);
        let same = (0..32).filter(|_| a.next() == b.next()).count();
        assert!(same < 2, "thread streams should be decorrelated");
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(1);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn workload_values_are_unique() {
        let mut w = DequeWorkload::new(3, 1, Mix::Balanced);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            if let DequeOp::PushLeft(v) | DequeOp::PushRight(v) = w.next_op() {
                assert!(seen.insert(v), "duplicate generated value {v}");
            }
        }
    }

    #[test]
    fn set_workload_respects_read_fraction() {
        let mut w = SetWorkload::new(11, 2, 90, 512);
        let mut reads = 0usize;
        for _ in 0..10_000 {
            match w.next_op() {
                SetOp::Contains(k) => {
                    assert!(k < 512);
                    reads += 1;
                }
                SetOp::Insert(k) | SetOp::Remove(k) => assert!(k < 512),
            }
        }
        // 90% nominal; allow generous slack for a 10k sample.
        assert!((8_500..=9_500).contains(&reads), "reads = {reads}");
    }

    #[test]
    fn set_workload_is_deterministic() {
        let mut a = SetWorkload::new(5, 1, 75, 64);
        let mut b = SetWorkload::new(5, 1, 75, 64);
        for _ in 0..1_000 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    /// The Gray method must reproduce the exact zipfian PMF. Small N so
    /// the empirical frequencies converge tightly in a fast test.
    #[test]
    fn zipfian_matches_exact_pmf() {
        for theta in [0.5, 0.99] {
            let z = Zipfian::new(5, theta);
            let mut rng = SplitMix64::new(0xE17);
            const DRAWS: u64 = 200_000;
            let mut counts = [0u64; 5];
            for _ in 0..DRAWS {
                counts[z.sample_rank(&mut rng) as usize] += 1;
            }
            let total_pmf: f64 = (0..5).map(|k| z.pmf(k)).sum();
            assert!((total_pmf - 1.0).abs() < 1e-9, "PMF must sum to 1");
            for (k, &c) in counts.iter().enumerate() {
                let expect = z.pmf(k as u64) * DRAWS as f64;
                let rel = (c as f64 - expect).abs() / expect;
                assert!(
                    rel < 0.05,
                    "theta={theta} rank {k}: observed {c}, expected {expect:.0} ({rel:.3} off)"
                );
            }
        }
    }

    #[test]
    fn zipfian_edge_cases() {
        // n = 1: every draw is rank 0.
        let z = Zipfian::new(1, 0.99);
        let mut rng = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(z.sample_rank(&mut rng), 0);
        }
        // Large n: ranks stay in range and rank 0 dominates any fixed
        // deep rank.
        let z = Zipfian::new(1_000_000, 0.99);
        let mut hot = 0u64;
        for _ in 0..10_000 {
            let r = z.sample_rank(&mut rng);
            assert!(r < 1_000_000);
            hot += u64::from(r == 0);
        }
        assert!(hot > 200, "rank 0 should be hot, saw {hot}/10000");
    }

    #[test]
    fn scrambled_zipfian_keys_spread_but_stay_skewed() {
        let dist = KeyDist::zipfian(1_000_000, 0.99);
        let mut rng = SplitMix64::new(42);
        let mut seen = std::collections::HashMap::new();
        for _ in 0..50_000 {
            let k = dist.sample_key(&mut rng);
            assert!(k < 1_000_000);
            *seen.entry(k).or_insert(0u64) += 1;
        }
        let max = seen.values().max().copied().unwrap();
        // Skew: the hottest key absorbs a visible share of the draws...
        assert!(max > 1_000, "no hot key emerged (max {max})");
        // ...but scrambling spreads the tail over many distinct keys.
        assert!(seen.len() > 5_000, "only {} distinct keys", seen.len());
    }

    #[test]
    fn set_workload_zipfian_dist_is_deterministic() {
        let d = KeyDist::zipfian(512, 0.99);
        let mut a = SetWorkload::with_dist(5, 1, 75, d.clone());
        let mut b = SetWorkload::with_dist(5, 1, 75, d);
        for _ in 0..1_000 {
            let op = a.next_op();
            assert_eq!(op, b.next_op());
            let (SetOp::Contains(k) | SetOp::Insert(k) | SetOp::Remove(k)) = op;
            assert!(k < 512);
        }
    }

    #[test]
    fn kv_workload_respects_mix() {
        let mix = KvMix::READ_HEAVY;
        let mut w = KvWorkload::new(3, 1, mix, KeyDist::uniform(10_000));
        let mut by_kind = [0u64; 5];
        for _ in 0..20_000 {
            let op = w.next_op();
            by_kind[op.kind()] += 1;
            if let KvOp::Batch(writes) = &op {
                assert_eq!(writes.len(), mix.batch_size);
            }
            if let KvOp::Scan { limit, .. } = op {
                assert_eq!(limit, mix.scan_limit);
            }
        }
        let pct = |n: u64| n * 100 / 20_000;
        assert!((87..=93).contains(&pct(by_kind[0])), "gets {by_kind:?}");
        assert!((2..=6).contains(&pct(by_kind[3])), "scans {by_kind:?}");
        assert!((1..=4).contains(&pct(by_kind[4])), "batches {by_kind:?}");
        assert!(by_kind[1] > 0 && by_kind[2] > 0, "writes {by_kind:?}");
    }

    #[test]
    fn kv_workload_is_deterministic() {
        let d = KeyDist::zipfian(1_000_000, 0.99);
        let mut a = KvWorkload::new(9, 2, KvMix::WRITE_HEAVY, d.clone());
        let mut b = KvWorkload::new(9, 2, KvMix::WRITE_HEAVY, d);
        for _ in 0..2_000 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn fifo_mix_never_pops_right() {
        let mut w = DequeWorkload::new(3, 0, Mix::Fifo);
        for _ in 0..1_000 {
            let op = w.next_op();
            assert!(!matches!(op, DequeOp::PopRight | DequeOp::PushLeft(_)));
        }
    }
}
