//! Plain-text result tables.
//!
//! Every `exp*` binary prints its results through [`Table`], in the same
//! aligned format EXPERIMENTS.md records, so regenerating a table is
//! `cargo run --release -p lfrc-bench --bin expN_…` and a diff.

use std::fmt;

/// A simple right-padded text table.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header arity).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
        self
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        widths
    }

    /// Renders as a GitHub-flavoured markdown table (for EXPERIMENTS.md).
    pub fn to_markdown(&self) -> String {
        let widths = self.widths();
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let body: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            format!("| {} |\n", body.join(" | "))
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("| {} |\n", sep.join(" | ")));
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_markdown())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new(["impl", "ops/s"]);
        t.row(["snark-lfrc", "123456"]);
        t.row(["locked", "9"]);
        let md = t.to_markdown();
        assert!(md.starts_with("| impl"));
        assert!(md.contains("| snark-lfrc | 123456 |"));
        assert!(md.lines().count() == 4);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_is_enforced() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }
}
