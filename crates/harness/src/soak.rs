//! Paced soak runner with per-op-kind latency tracking.
//!
//! A soak differs from a throughput run ([`crate::runner`]) in what it
//! measures: not "how fast can this go" but "what does the tail look
//! like at a *fixed, sustainable* rate over minutes". [`run_soak`]
//! drives `threads` workers until a deadline, optionally pacing them to
//! an aggregate target op rate, and times every useful operation twice
//! over:
//!
//! * into the registry histogram
//!   [`Hist::OpLatencyNs`](lfrc_obs::hist::Hist::OpLatencyNs) — which
//!   is what the timeline sampler's per-tick `p999_ns` and the live
//!   `/metrics` cumulative buckets are computed from; and
//! * into a standalone per-**kind** [`Histogram`] (get/put/delete/…,
//!   the body reports which), for the end-of-run per-op-type
//!   p50/p99/p99.9 table. These are ungated, so the table exists even
//!   in obs-disabled builds.
//!
//! Pacing is open-loop: each worker computes its per-op period from the
//! aggregate target and sleeps whenever it runs more than a millisecond
//! ahead of schedule, so a slow patch is followed by catch-up — the
//! standard load-generator shape, which keeps queueing delay visible in
//! the tail instead of silently shedding load.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

use lfrc_obs::hist::{Hist, HistSnapshot, Histogram};

use crate::runner::RunStats;
use crate::table::Table;

/// Configuration for one [`run_soak`] call.
#[derive(Debug, Clone, Copy)]
pub struct SoakConfig {
    /// Worker threads.
    pub threads: usize,
    /// Wall-clock run length.
    pub duration: Duration,
    /// Aggregate target op rate across all workers; 0 = unpaced
    /// (run flat out).
    pub target_ops_per_sec: u64,
    /// Op-kind labels; the body returns an index into this slice (e.g.
    /// [`crate::workload::KvOp::KINDS`]).
    pub kinds: &'static [&'static str],
}

/// What a soak run produced: aggregate throughput plus one latency
/// snapshot per op kind.
#[derive(Debug)]
pub struct SoakReport {
    /// Useful operations and wall time.
    pub stats: RunStats,
    /// `(kind label, latency snapshot)` in `kinds` order.
    pub per_kind: Vec<(&'static str, HistSnapshot)>,
}

impl SoakReport {
    /// The per-op-type quantile table (`kind | count | p50 | p99 |
    /// p99.9 | max`) every soak binary prints.
    pub fn kind_table(&self) -> Table {
        let mut t = Table::new(["op", "count", "p50", "p99", "p99.9", "max"]);
        for (kind, snap) in &self.per_kind {
            t.row([
                (*kind).to_string(),
                snap.count().to_string(),
                crate::latency::human_ns(snap.quantile_ns(0.5)),
                crate::latency::human_ns(snap.quantile_ns(0.99)),
                crate::latency::human_ns(snap.quantile_ns(0.999)),
                crate::latency::human_ns(snap.max_ns()),
            ]);
        }
        t
    }

    /// All kinds merged into one snapshot (the "overall" row).
    pub fn merged(&self) -> HistSnapshot {
        self.per_kind
            .iter()
            .fold(HistSnapshot::empty(), |acc, (_, s)| acc.merge(s))
    }
}

/// Runs `body` on `threads` workers until `cfg.duration` elapses,
/// pacing to `cfg.target_ops_per_sec` when nonzero.
///
/// `body(thread, i)` performs one operation and returns `Some(kind)`
/// (an index into `cfg.kinds`) for useful work, `None` for an iteration
/// that should not be timed. Workers settle increment buffers and flush
/// defer buffers before exiting, so censuses are inspectable right
/// after this returns.
pub fn run_soak<F>(cfg: &SoakConfig, body: F) -> SoakReport
where
    F: Fn(usize, u64) -> Option<usize> + Sync,
{
    assert!(cfg.threads > 0);
    assert!(!cfg.kinds.is_empty());
    let kind_hists: Vec<Histogram> = cfg.kinds.iter().map(|_| Histogram::new()).collect();
    let barrier = Barrier::new(cfg.threads + 1);
    let total = AtomicU64::new(0);
    let start: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
    // Per-thread, per-op period for the aggregate target (0 = unpaced).
    let period_ns = (cfg.threads as u64 * 1_000_000_000)
        .checked_div(cfg.target_ops_per_sec)
        .unwrap_or(0);
    std::thread::scope(|s| {
        for t in 0..cfg.threads {
            let (body, barrier, total, start, kind_hists) =
                (&body, &barrier, &total, &start, &kind_hists);
            s.spawn(move || {
                barrier.wait();
                let begin = *start.get().expect("published before barrier release");
                let mut done = 0u64;
                let mut i = 0u64;
                loop {
                    if i.is_multiple_of(32) && begin.elapsed() >= cfg.duration {
                        break;
                    }
                    if period_ns > 0 {
                        let scheduled = i.saturating_mul(period_ns);
                        let now = begin.elapsed().as_nanos() as u64;
                        // Sleep only when meaningfully ahead — sub-ms
                        // sleeps cost more than they pace.
                        if scheduled > now + 1_000_000 {
                            std::thread::sleep(Duration::from_nanos(scheduled - now));
                        }
                    }
                    let t0 = Instant::now();
                    if let Some(kind) = body(t, i) {
                        let ns = t0.elapsed().as_nanos() as u64;
                        kind_hists[kind].record(ns);
                        if lfrc_obs::enabled() {
                            lfrc_obs::hist::record(Hist::OpLatencyNs, ns);
                        }
                        done += 1;
                    }
                    i += 1;
                }
                total.fetch_add(done, Ordering::AcqRel);
                lfrc_core::settle_thread();
                lfrc_core::defer::flush_thread();
            });
        }
        start.set(Instant::now()).expect("set once");
        barrier.wait();
    });
    SoakReport {
        stats: RunStats {
            ops: total.load(Ordering::Acquire),
            elapsed: cfg.duration,
        },
        per_kind: cfg
            .kinds
            .iter()
            .zip(kind_hists.iter())
            .map(|(k, h)| (*k, h.snapshot()))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KINDS: [&str; 2] = ["even", "odd"];

    #[test]
    fn unpaced_soak_counts_and_classifies() {
        let cfg = SoakConfig {
            threads: 2,
            duration: Duration::from_millis(60),
            target_ops_per_sec: 0,
            kinds: &KINDS,
        };
        let report = run_soak(&cfg, |_, i| Some((i % 2) as usize));
        assert!(report.stats.ops > 0);
        let (even, odd) = (&report.per_kind[0], &report.per_kind[1]);
        assert_eq!(even.0, "even");
        assert!(even.1.count() > 0 && odd.1.count() > 0);
        assert_eq!(report.merged().count(), report.stats.ops);
        let table = report.kind_table().to_markdown();
        assert!(table.contains("p99.9") && table.contains("even"));
    }

    #[test]
    fn paced_soak_respects_target_rate() {
        let cfg = SoakConfig {
            threads: 2,
            duration: Duration::from_millis(300),
            target_ops_per_sec: 2_000,
            kinds: &KINDS,
        };
        let report = run_soak(&cfg, |_, i| Some((i % 2) as usize));
        // ~600 expected. The ceiling is what matters (pacing held the
        // rate down); keep both bounds loose for noisy CI hosts.
        assert!(
            report.stats.ops >= 100,
            "paced soak starved: {} ops",
            report.stats.ops
        );
        assert!(
            report.stats.ops <= 1_500,
            "pacing failed to cap: {} ops",
            report.stats.ops
        );
    }

    #[test]
    fn none_iterations_are_not_recorded() {
        let cfg = SoakConfig {
            threads: 1,
            duration: Duration::from_millis(30),
            target_ops_per_sec: 0,
            kinds: &KINDS,
        };
        let report = run_soak(&cfg, |_, i| if i % 2 == 0 { Some(0) } else { None });
        assert_eq!(report.per_kind[1].1.count(), 0);
        assert_eq!(report.merged().count(), report.stats.ops);
    }
}
