//! Per-phase observability recording for experiment runs.
//!
//! A [`PhaseRecorder`] snapshots the `lfrc-obs` counter registry at
//! experiment start and after every phase, storing the per-phase *delta*
//! (high-water marks keep their absolute value — see
//! `lfrc_obs::Snapshot::diff`). [`PhaseRecorder::finish`] writes one JSON
//! file per experiment into `experiment-results/obs/` (override with the
//! `LFRC_OBS_DIR` environment variable), so every throughput table in
//! `experiment-results/` gains a machine-readable record of what the
//! protocol actually did — DCAS retries, defer depth, epoch lag —
//! alongside the ops/s.
//!
//! The runner entry points [`crate::runner::run_ops_recorded`] and
//! [`crate::runner::run_for_duration_recorded`] fold throughput into the
//! same phase entry. In an obs-disabled build everything still works —
//! the counters simply read zero.

use std::io::Write as _;
use std::path::PathBuf;
use std::time::Duration;

use lfrc_obs::hist::{Hist, HistSnapshot};
use lfrc_obs::{Counter, Sampler, Snapshot};

use crate::runner::RunStats;

/// Directory JSON snapshots land in unless `LFRC_OBS_DIR` overrides it.
pub const DEFAULT_OBS_DIR: &str = "experiment-results/obs";

/// One recorded phase: label, optional throughput, counter delta.
#[derive(Debug, Clone)]
pub struct PhaseRecord {
    /// Phase label (e.g. `"grow"`, `"churn 4thr"`).
    pub label: String,
    /// Operations completed, when the phase was a measured run.
    pub ops: Option<u64>,
    /// Wall-clock seconds, when the phase was a measured run.
    pub elapsed_secs: Option<f64>,
    /// Counter change over the phase.
    pub delta: Snapshot,
    /// Latency histogram change over the phase, one entry per
    /// [`Hist`] in declaration order (empty deltas in obs-disabled
    /// builds).
    pub hists: Vec<(Hist, HistSnapshot)>,
}

/// Records one `lfrc-obs` snapshot per experiment phase and exports the
/// series as JSON.
#[derive(Debug)]
pub struct PhaseRecorder {
    experiment: String,
    last: Snapshot,
    last_hists: Vec<HistSnapshot>,
    phases: Vec<PhaseRecord>,
    timeline: Option<Sampler>,
}

impl PhaseRecorder {
    /// Starts recording: the baseline snapshot is taken here, so counts
    /// accumulated by *earlier* experiments in the same process do not
    /// pollute the first phase's delta.
    pub fn new(experiment: impl Into<String>) -> Self {
        PhaseRecorder {
            experiment: experiment.into(),
            last: Snapshot::take(),
            last_hists: Hist::ALL.iter().map(|h| HistSnapshot::take(*h)).collect(),
            phases: Vec::new(),
            timeline: None,
        }
    }

    /// Starts the background timeline sampler for this experiment: one
    /// JSONL row every `interval` into
    /// `experiment-results/obs/<experiment>.timeline.jsonl` (see
    /// [`lfrc_obs::sampler`]). Stopped (with a final row) by
    /// [`PhaseRecorder::finish`] or drop. Inert in obs-disabled builds.
    pub fn start_timeline(&mut self, interval: Duration) -> std::io::Result<()> {
        self.timeline = Some(lfrc_obs::sampler::start(&self.experiment, interval)?);
        Ok(())
    }

    /// Runs `f` as one phase: everything counted during the call becomes
    /// the phase's delta.
    pub fn phase<R>(&mut self, label: impl Into<String>, f: impl FnOnce() -> R) -> R {
        let r = f();
        self.close_phase(label.into(), None);
        r
    }

    /// Closes a phase that was a measured run, attaching its throughput.
    /// Used by the `*_recorded` runners; call directly when driving
    /// [`crate::runner::run_ops`] yourself.
    pub fn record_run(&mut self, label: impl Into<String>, stats: &RunStats) {
        self.close_phase(label.into(), Some(stats));
    }

    fn close_phase(&mut self, label: String, stats: Option<&RunStats>) {
        let now = Snapshot::take();
        let now_hists: Vec<HistSnapshot> =
            Hist::ALL.iter().map(|h| HistSnapshot::take(*h)).collect();
        self.phases.push(PhaseRecord {
            label,
            ops: stats.map(|s| s.ops),
            elapsed_secs: stats.map(|s| s.elapsed.as_secs_f64()),
            delta: now.diff(&self.last),
            hists: Hist::ALL
                .iter()
                .zip(now_hists.iter().zip(self.last_hists.iter()))
                .map(|(h, (now, last))| (*h, now.diff(last)))
                .collect(),
        });
        self.last = now;
        self.last_hists = now_hists;
    }

    /// The phases recorded so far.
    pub fn phases(&self) -> &[PhaseRecord] {
        &self.phases
    }

    /// The whole recording as one JSON document:
    /// `{"experiment": "...", "obs_enabled": bool, "phases": [...]}` with
    /// each phase carrying its label, optional `ops`/`elapsed_secs`, a
    /// flat `counters` object (see `lfrc_obs::Snapshot::to_json`), and a
    /// `hists` object of per-histogram latency summaries (see
    /// `lfrc_obs::hist::HistSnapshot::to_json_summary`).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.phases.len() * 768);
        out.push_str(&format!(
            "{{\"experiment\":{},\"obs_enabled\":{},\"phases\":[",
            json_string(&self.experiment),
            lfrc_obs::enabled(),
        ));
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"label\":{}", json_string(&p.label)));
            if let Some(ops) = p.ops {
                out.push_str(&format!(",\"ops\":{ops}"));
            }
            if let Some(secs) = p.elapsed_secs {
                out.push_str(&format!(",\"elapsed_secs\":{secs:.6}"));
            }
            out.push_str(&format!(",\"counters\":{}", p.delta.to_json()));
            out.push_str(",\"hists\":{");
            for (j, (h, d)) in p.hists.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":{}", h.name(), d.to_json_summary()));
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }

    /// Writes the JSON document to `<dir>/<experiment>.json`, where
    /// `<dir>` is `LFRC_OBS_DIR` or [`DEFAULT_OBS_DIR`], creating the
    /// directory as needed, and stops the timeline sampler (if
    /// [`PhaseRecorder::start_timeline`] started one), flushing its
    /// final row. Returns the path written.
    pub fn finish(&mut self) -> std::io::Result<PathBuf> {
        if let Some(sampler) = self.timeline.take() {
            let _ = sampler.stop();
        }
        let dir = std::env::var("LFRC_OBS_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from(DEFAULT_OBS_DIR));
        std::fs::create_dir_all(&dir)?;
        let sanitized: String = self
            .experiment
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        let path = dir.join(format!("{sanitized}.json"));
        let mut f = std::fs::File::create(&path)?;
        f.write_all(self.to_json().as_bytes())?;
        f.write_all(b"\n")?;
        Ok(path)
    }
}

/// Minimal JSON string encoder (labels are caller-controlled text).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Convenience for diagnostics lines: the current aggregate value of one
/// counter (zero when obs is disabled).
pub fn counter_total(c: Counter) -> u64 {
    lfrc_obs::counters::total(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn json_shape_and_escaping() {
        let mut rec = PhaseRecorder::new("unit \"quoted\"");
        rec.phase("alloc\nphase", || ());
        rec.record_run(
            "run",
            &RunStats {
                ops: 42,
                elapsed: Duration::from_millis(500),
            },
        );
        let j = rec.to_json();
        assert!(j.contains("\"experiment\":\"unit \\\"quoted\\\"\""));
        assert!(j.contains("\"label\":\"alloc\\nphase\""));
        assert!(j.contains("\"ops\":42"));
        assert!(j.contains("\"elapsed_secs\":0.500000"));
        assert!(j.contains("\"counters\":{"));
        assert!(j.contains("\"hists\":{\"op_latency_ns\":{\"count\":"));
        assert!(j.contains("\"grace_latency_ns\":{\"count\":"));
        assert_eq!(j.matches("\"label\"").count(), 2);
        // Balanced braces: crude but catches emitter slips.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn finish_writes_well_formed_file() {
        let dir = std::env::temp_dir().join(format!("lfrc-obs-test-{}", std::process::id()));
        // Scope the env override to this test binary invocation.
        std::env::set_var("LFRC_OBS_DIR", &dir);
        let mut rec = PhaseRecorder::new("writer/test");
        rec.phase("only", || ());
        let path = rec.finish().expect("write");
        std::env::remove_var("LFRC_OBS_DIR");
        assert_eq!(path.file_name().unwrap(), "writer_test.json");
        let body = std::fs::read_to_string(&path).expect("read back");
        assert!(body.starts_with('{') && body.trim_end().ends_with('}'));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
