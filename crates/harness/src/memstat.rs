//! Memory-footprint sampling for experiment E3.
//!
//! Two complementary measures:
//!
//! * logical footprints reported by the structures themselves (LFRC
//!   census `live()`, Valois `pool_nodes()`, arena `live()`), collected
//!   into a [`MemSeries`] per phase;
//! * the process resident set ([`rss_bytes`]) as a sanity cross-check
//!   that logical frees actually return memory pressure.

use std::fmt;

/// Current resident-set size of the process, in bytes (Linux
/// `/proc/self/statm`; returns 0 on other platforms or read failure).
pub fn rss_bytes() -> u64 {
    let Ok(statm) = std::fs::read_to_string("/proc/self/statm") else {
        return 0;
    };
    let mut fields = statm.split_whitespace();
    let _size = fields.next();
    let Some(resident) = fields.next().and_then(|f| f.parse::<u64>().ok()) else {
        return 0;
    };
    resident * page_size()
}

/// Cached kernel page size: /proc/self/smaps is parsed exactly once per
/// process, so [`rss_bytes`] stays cheap enough to call inside sampling
/// loops (E3 samples after every phase; the obs exporter samples per
/// phase too).
static PAGE: std::sync::OnceLock<u64> = std::sync::OnceLock::new();

/// The kernel page size in bytes.
///
/// Derived without libc: Linux exposes it as the `KernelPageSize` of any
/// mapping in `/proc/self/smaps`. Falls back to the near-universal 4 KiB
/// if the file is unavailable (non-Linux, restricted /proc). The parse
/// happens once; subsequent calls read the cached value.
pub fn page_size() -> u64 {
    *PAGE.get_or_init(|| {
        std::fs::read_to_string("/proc/self/smaps")
            .ok()
            .and_then(|smaps| {
                smaps.lines().find_map(|l| {
                    let rest = l.strip_prefix("KernelPageSize:")?;
                    let kb: u64 = rest.trim().strip_suffix("kB")?.trim().parse().ok()?;
                    Some(kb * 1024)
                })
            })
            .unwrap_or(4096)
    })
}

/// A labelled series of per-phase footprint samples.
#[derive(Debug, Default, Clone)]
pub struct MemSeries {
    samples: Vec<(String, u64)>,
}

impl MemSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn sample(&mut self, phase: impl Into<String>, value: u64) {
        self.samples.push((phase.into(), value));
    }

    /// The recorded samples, in order.
    pub fn samples(&self) -> &[(String, u64)] {
        &self.samples
    }

    /// Largest sample value.
    pub fn peak(&self) -> u64 {
        self.samples.iter().map(|(_, v)| *v).max().unwrap_or(0)
    }

    /// Last sample value.
    pub fn last(&self) -> u64 {
        self.samples.last().map(|(_, v)| *v).unwrap_or(0)
    }

    /// `true` if some later sample is strictly below an earlier one —
    /// i.e. the footprint *shrank* at least once (the paper's claim for
    /// LFRC; false for freelist/arena schemes under monotone load).
    pub fn ever_shrinks(&self) -> bool {
        let mut max_seen = 0u64;
        for (_, v) in &self.samples {
            if *v < max_seen {
                return true;
            }
            max_seen = (*v).max(max_seen);
        }
        false
    }
}

impl fmt::Display for MemSeries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (phase, v) in &self.samples {
            writeln!(f, "{phase:>24}  {v:>12}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rss_is_positive_on_linux() {
        if cfg!(target_os = "linux") {
            assert!(rss_bytes() > 0);
        }
    }

    #[test]
    fn page_size_is_sane_and_stable() {
        let p = page_size();
        assert!(p >= 4096, "page size below 4 KiB: {p}");
        assert!(p.is_power_of_two(), "page size not a power of two: {p}");
        // Cached: repeated calls must agree (and not re-parse /proc).
        assert_eq!(p, page_size());
    }

    #[test]
    fn series_detects_shrink() {
        let mut s = MemSeries::new();
        s.sample("grow", 100);
        s.sample("peak", 200);
        s.sample("drain", 50);
        assert!(s.ever_shrinks());
        assert_eq!(s.peak(), 200);
        assert_eq!(s.last(), 50);
    }

    #[test]
    fn monotone_series_never_shrinks() {
        let mut s = MemSeries::new();
        s.sample("a", 1);
        s.sample("b", 1);
        s.sample("c", 5);
        assert!(!s.ever_shrinks());
    }
}
