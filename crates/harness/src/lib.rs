//! Experiment harness: workload generation, throughput measurement,
//! stall injection scaffolding, invariant checking, memory sampling, and
//! table rendering.
//!
//! Every experiment binary in `lfrc-bench` (see EXPERIMENTS.md) is built
//! from these pieces. The harness is deliberately structure-agnostic — it
//! drives closures, so the same runner measures a Snark deque, a Valois
//! stack, or a mutex baseline without the harness depending on any of
//! them.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod checker;
pub mod latency;
pub mod memstat;
pub mod obsrec;
pub mod runner;
pub mod soak;
pub mod table;
pub mod workload;

pub use checker::ConservationChecker;
pub use latency::human_ns;
pub use memstat::{page_size, rss_bytes, MemSeries};
pub use obsrec::{PhaseRecord, PhaseRecorder};
pub use runner::{
    run_for_duration, run_for_duration_recorded, run_ops, run_ops_recorded, RunStats,
};
pub use soak::{run_soak, SoakConfig, SoakReport};
pub use table::Table;
pub use workload::{
    DequeOp, DequeWorkload, KeyDist, KvMix, KvOp, KvWorkload, Mix, SetOp, SetWorkload, SplitMix64,
    Zipfian,
};
