//! Multi-threaded measurement loops.
//!
//! Two shapes cover every experiment:
//!
//! * [`run_ops`] — each of `threads` workers executes a fixed number of
//!   operations; returns wall time and aggregate throughput. Used when
//!   the total work must be exact (conservation checking).
//! * [`run_for_duration`] — workers run until a deadline; returns the
//!   number of operations completed. Used when some workers may be
//!   stalled (experiment E4) and an exact count is impossible.
//!
//! The `*_recorded` variants wrap each run as one phase of a
//! [`crate::obsrec::PhaseRecorder`], so experiments export an obs counter
//! snapshot per measured phase alongside the throughput numbers.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

/// Result of a measured run.
#[derive(Debug, Clone, Copy)]
pub struct RunStats {
    /// Total operations completed across all workers.
    pub ops: u64,
    /// Wall-clock time from the start barrier to the last worker's exit.
    pub elapsed: Duration,
}

impl RunStats {
    /// Aggregate throughput in operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

impl fmt::Display for RunStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ops in {:.3}s ({:.0} ops/s)",
            self.ops,
            self.elapsed.as_secs_f64(),
            self.ops_per_sec()
        )
    }
}

/// Runs `ops_per_thread` iterations of `body` on each of `threads`
/// workers, beginning simultaneously. `body(thread, i)` performs the
/// `i`-th operation of worker `thread`.
pub fn run_ops<F>(threads: usize, ops_per_thread: u64, body: F) -> RunStats
where
    F: Fn(usize, u64) + Sync,
{
    assert!(threads > 0);
    let barrier = Barrier::new(threads + 1);
    let start: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
    std::thread::scope(|s| {
        for t in 0..threads {
            let (body, barrier) = (&body, &barrier);
            s.spawn(move || {
                barrier.wait();
                for i in 0..ops_per_thread {
                    body(t, i);
                }
                // Deferred-fast-path workloads park decrements (and
                // DeferredInc workloads pending increments) on the
                // worker's buffers, and `std::thread::scope` can return
                // before TLS exit flushes run — settle and flush
                // explicitly so callers can inspect censuses right after
                // this returns (see lfrc_core::defer / lfrc_core::inc).
                lfrc_core::settle_thread();
                lfrc_core::defer::flush_thread();
            });
        }
        // Stamp *before* releasing the barrier: on a loaded (or
        // single-core) host the workers may otherwise run to completion
        // before this thread is rescheduled, yielding elapsed ≈ 0.
        start.set(Instant::now()).expect("set once");
        barrier.wait();
    });
    let elapsed = start.get().expect("set in scope").elapsed();
    RunStats {
        ops: threads as u64 * ops_per_thread,
        elapsed,
    }
}

/// Runs `body` repeatedly on each worker until `duration` elapses.
///
/// `body(thread, i)` returns `true` if the iteration performed useful
/// work (counted) or `false` if it should be ignored (e.g. an empty pop).
/// Workers poll the deadline every few iterations, so a *stalled* worker
/// (one that never returns from `body`) does not prevent the others from
/// finishing — the run returns once every non-stalled worker exits, and
/// `stalled_release` is flipped so instrumented stalls can unwind.
pub fn run_for_duration<F>(
    threads: usize,
    duration: Duration,
    stalled_release: &AtomicBool,
    body: F,
) -> RunStats
where
    F: Fn(usize, u64) -> bool + Sync,
{
    assert!(threads > 0);
    let barrier = Barrier::new(threads + 1);
    let total = AtomicU64::new(0);
    let start: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
    std::thread::scope(|s| {
        for t in 0..threads {
            let (body, barrier, total, start) = (&body, &barrier, &total, &start);
            s.spawn(move || {
                barrier.wait();
                let begin = *start.get().expect("published before barrier release");
                let mut done = 0u64;
                let mut i = 0u64;
                loop {
                    if i.is_multiple_of(32) && begin.elapsed() >= duration {
                        break;
                    }
                    if body(t, i) {
                        done += 1;
                    }
                    i += 1;
                }
                total.fetch_add(done, Ordering::AcqRel);
                lfrc_core::settle_thread();
                lfrc_core::defer::flush_thread();
            });
        }
        start.set(Instant::now()).expect("set once");
        barrier.wait();
        // Give stalled workers their release once the measurement window
        // has passed, so their scoped threads can join.
        std::thread::sleep(duration);
        stalled_release.store(true, Ordering::SeqCst);
    });
    RunStats {
        ops: total.load(Ordering::Acquire),
        elapsed: duration,
    }
}

/// [`run_ops`], recorded: the run becomes one phase of `rec` labelled
/// `label`, carrying its counter delta, its per-op latency histogram
/// delta (each `body` call is timed into
/// [`Hist::OpLatencyNs`](lfrc_obs::hist::Hist::OpLatencyNs) via the
/// sharded registry), and its throughput. In `--no-default-features`
/// builds the timing collapses to nothing — `lfrc_obs::enabled()` is a
/// `const`, so the branch folds away.
pub fn run_ops_recorded<F>(
    rec: &mut crate::obsrec::PhaseRecorder,
    label: &str,
    threads: usize,
    ops_per_thread: u64,
    body: F,
) -> RunStats
where
    F: Fn(usize, u64) + Sync,
{
    let stats = run_ops(threads, ops_per_thread, |t, i| {
        if lfrc_obs::enabled() {
            let begin = Instant::now();
            body(t, i);
            lfrc_obs::hist::record(
                lfrc_obs::hist::Hist::OpLatencyNs,
                begin.elapsed().as_nanos() as u64,
            );
        } else {
            body(t, i);
        }
    });
    rec.record_run(label, &stats);
    stats
}

/// [`run_for_duration`], recorded: the run becomes one phase of `rec`
/// labelled `label`, carrying its counter delta, per-op latency delta
/// (only iterations where `body` reports useful work are recorded —
/// empty pops would flood the histogram's low buckets), and throughput.
pub fn run_for_duration_recorded<F>(
    rec: &mut crate::obsrec::PhaseRecorder,
    label: &str,
    threads: usize,
    duration: Duration,
    stalled_release: &AtomicBool,
    body: F,
) -> RunStats
where
    F: Fn(usize, u64) -> bool + Sync,
{
    let stats = run_for_duration(threads, duration, stalled_release, |t, i| {
        if lfrc_obs::enabled() {
            let begin = Instant::now();
            let useful = body(t, i);
            if useful {
                lfrc_obs::hist::record(
                    lfrc_obs::hist::Hist::OpLatencyNs,
                    begin.elapsed().as_nanos() as u64,
                );
            }
            useful
        } else {
            body(t, i)
        }
    });
    rec.record_run(label, &stats);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_ops_counts_everything() {
        let counter = AtomicU64::new(0);
        let stats = run_ops(4, 1_000, |_, _| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(stats.ops, 4_000);
        assert_eq!(counter.load(Ordering::Relaxed), 4_000);
        assert!(stats.ops_per_sec() > 0.0);
    }

    #[test]
    fn run_for_duration_stops() {
        let release = AtomicBool::new(false);
        let stats = run_for_duration(2, Duration::from_millis(50), &release, |_, _| true);
        assert!(stats.ops > 0);
        assert!(release.load(Ordering::SeqCst));
    }

    #[test]
    fn run_for_duration_survives_stalled_worker() {
        // Worker 0 blocks until released; workers 1..3 must still make
        // progress and the call must return.
        let release = AtomicBool::new(false);
        let stats = run_for_duration(3, Duration::from_millis(50), &release, |t, _| {
            if t == 0 {
                while !release.load(Ordering::SeqCst) {
                    std::thread::yield_now();
                }
                false
            } else {
                true
            }
        });
        assert!(stats.ops > 0, "non-stalled workers made no progress");
    }

    #[test]
    fn display_formats() {
        let s = RunStats {
            ops: 100,
            elapsed: Duration::from_millis(200),
        };
        let txt = format!("{s}");
        assert!(txt.contains("100 ops"));
    }
}
