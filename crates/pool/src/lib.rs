//! An epoch-gated slab allocator for LFRC nodes and DCAS descriptors.
//!
//! The LFRC protocol allocates and frees constantly: every counted object
//! is a heap node, and every emulated DCAS/MCAS attempt in the `Pooled`
//! ablation mode allocates a descriptor here (the default
//! `DescMode::Immortal` reuses per-thread immortal slots and never touches
//! this pool — the descriptor size class stays for the ablation). Routing
//! node and descriptor traffic through the global allocator makes `malloc`
//! the dominant cost of the whole reproduction. This crate replaces it
//! with a purpose-built pool shaped by the protocol's reclamation rules:
//!
//! * **Size-class slabs.** Requests are rounded up to a multiple of
//!   64 bytes (up to [`MAX_ALLOC`]) and served from 64 KiB slabs aligned
//!   to 64 KiB, so a slot pointer finds its slab header by masking low
//!   bits — no per-slot metadata.
//! * **Per-thread magazines.** Each thread owns a bounded LIFO cache of
//!   free slots per class. The hot alloc/free path is a thread-local
//!   `Vec` push/pop: no atomics, no locks. Magazine shards live in a
//!   claim/vacate registry (mirroring the `lfrc-obs` counter shards): a
//!   vacating thread drains its slots back to their slabs so memory is
//!   never stranded, and the shard structure is recycled by the next
//!   thread to start.
//! * **Lock-free remote free.** A slot freed by a thread whose magazine
//!   is full (or by a thread other than the allocator, after the shards
//!   rotate) is pushed onto its slab's intrusive Treiber stack with a
//!   single CAS. Slabs are harvested from that stack, under the class
//!   lock, on the magazine-refill cold path.
//! * **Epoch-gated retirement.** When the last outstanding slot of a
//!   fully-carved slab comes home, the freeing thread takes the class
//!   lock, re-checks, unlinks the slab from the live registry, and hands
//!   it to the registered *retire sink* (see [`set_retire_sink`]). The
//!   sink — installed by `lfrc-dcas`, which owns the process-wide epoch
//!   collector — defers [`release_retired_slab`] by one grace period, so
//!   the slab's pages are returned to the OS only after every operation
//!   that could still read them has finished.
//!
//! # Why slot reuse needs no epoch gate of its own
//!
//! The pool hands a freed slot back into circulation immediately, yet the
//! `Borrowed`/pin contract promises that pinned readers never observe a
//! *recycled* object. The gate lives in the caller: `lfrc-core` and
//! `lfrc-dcas` never call [`dealloc`] directly from the algorithm's
//! "free". They epoch-defer the release (via `retire_fn`), so by the time
//! a slot reaches this crate one full grace period has already elapsed
//! since the object was unreachable. Slab *retirement* then adds a second
//! grace period before the pages are unmapped — belt and braces for the
//! emulator's stray-read discipline, which permits reads (never writes)
//! of stale cells one epoch back.
//!
//! # Feature gating
//!
//! Everything is behind the `enabled` cargo feature. When it is off,
//! [`alloc`] always returns `None` and callers fall back to the global
//! allocator, which keeps the pool out of `--no-default-features` builds
//! entirely. Only the workspace root and `lfrc-bench` forward a feature
//! here; the crates that use the pool depend on it featurelessly.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::alloc::Layout;
use std::ptr::NonNull;

/// Largest request (in bytes) the pool will serve; bigger layouts make
/// [`alloc`] return `None` and the caller falls back to the global
/// allocator. Also the largest size class.
pub const MAX_ALLOC: usize = 4096;

/// Size (and alignment) of one slab. Slot pointers are mapped to their
/// slab header by masking the low `log2(SLAB_SIZE)` bits.
pub const SLAB_SIZE: usize = 64 * 1024;

/// Point-in-time gauges of the pool's footprint.
///
/// Unlike the monotone `lfrc-obs` counters (which survive as high-water
/// marks), these can shrink: a grow-then-shrink workload should show
/// `slabs_live` returning to near its baseline once churn stops and
/// magazines are flushed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Slabs currently linked into a class registry (allocated − retired).
    pub slabs_live: u64,
    /// Slabs ever mapped.
    pub slabs_allocated: u64,
    /// Slabs unlinked and handed to the retire sink (or leaked when no
    /// sink is registered).
    pub slabs_retired: u64,
    /// Retired slabs whose pages have actually been returned to the OS
    /// (the sink's grace period expired).
    pub slabs_released: u64,
    /// Bytes still mapped: (allocated − released) × [`SLAB_SIZE`].
    pub bytes_mapped: u64,
}

/// Whether this build contains the pool (`enabled` cargo feature).
///
/// When `false`, [`alloc`] always returns `None`.
pub const fn enabled() -> bool {
    cfg!(feature = "enabled")
}

#[cfg(feature = "enabled")]
mod imp {
    use std::alloc::Layout;
    use std::cell::UnsafeCell;
    use std::mem;
    use std::ptr::NonNull;
    use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
    use std::sync::Mutex;

    use lfrc_obs::counters::{self, Counter};
    use lfrc_obs::instrument::{self, yield_point, InstrSite};

    use super::{PoolStats, MAX_ALLOC, SLAB_SIZE};

    /// Classes are multiples of this grain; it is also the maximum layout
    /// alignment the pool serves (slots sit on 64-byte boundaries).
    const CLASS_GRAIN: usize = 64;
    const N_CLASSES: usize = MAX_ALLOC / CLASS_GRAIN;
    /// Bytes reserved at the front of a slab for its header; the first
    /// slot starts here.
    const HDR_RESERVE: usize = 64;
    /// Magazine capacity per (thread, class); refills aim for half.
    const MAG_CAP: usize = 64;
    const SLAB_MASK: usize = !(SLAB_SIZE - 1);
    const SLAB_MAGIC: u64 = 0x4c46_5243_504f_4f4c; // "LFRCPOOL"

    /// Lives at offset 0 of every slab.
    ///
    /// `in_use` counts slots currently *outside* the slab — held by a
    /// live object or parked in some thread's magazine. It is incremented
    /// under the class lock when a slot leaves (fresh carve or remote
    /// harvest) and decremented by the lock-free remote push when a slot
    /// comes home; the decrement that reaches zero triggers the
    /// retirement attempt. Slots sitting in magazines therefore pin their
    /// slab live, which is exactly why vacating threads drain.
    #[repr(C, align(64))]
    struct SlabHeader {
        magic: u64,
        class_idx: u32,
        slot_size: u32,
        n_slots: u32,
        /// Slots handed out at least once (bump cursor). Mutated only
        /// under the class lock; a slab retires only once fully carved,
        /// so at most one partially-carved slab lingers per class.
        carved: AtomicU32,
        in_use: AtomicUsize,
        /// Treiber stack of returned slots; each free slot's first word
        /// is the intrusive next link (0 terminates).
        remote_head: AtomicUsize,
    }

    const _: () = assert!(mem::size_of::<SlabHeader>() <= HDR_RESERVE);
    const _: () = assert!(SLAB_SIZE.is_power_of_two());

    struct ClassState {
        /// Addresses of live slab headers, including `current`.
        slabs: Vec<usize>,
        /// The bump-carve slab (0 = none).
        current: usize,
    }

    impl ClassState {
        const fn new() -> Self {
            ClassState {
                slabs: Vec::new(),
                current: 0,
            }
        }
    }

    static CLASSES: [Mutex<ClassState>; N_CLASSES] =
        [const { Mutex::new(ClassState::new()) }; N_CLASSES];

    static SLABS_ALLOCATED: AtomicU64 = AtomicU64::new(0);
    static SLABS_RETIRED: AtomicU64 = AtomicU64::new(0);
    static SLABS_RELEASED: AtomicU64 = AtomicU64::new(0);
    static SLABS_LIVE: AtomicU64 = AtomicU64::new(0);

    /// The registered retire sink as a `usize` (0 = none). A plain store
    /// rather than a `OnceLock` so tests can install their own.
    static RETIRE_SINK: AtomicUsize = AtomicUsize::new(0);

    fn slab_layout() -> Layout {
        Layout::from_size_align(SLAB_SIZE, SLAB_SIZE).unwrap()
    }

    fn class_of(layout: Layout) -> Option<usize> {
        let size = layout.size().max(1);
        if size > MAX_ALLOC || layout.align() > CLASS_GRAIN {
            return None;
        }
        Some(size.div_ceil(CLASS_GRAIN) - 1)
    }

    /// # Safety
    /// `slot` must have been returned by [`alloc`] (and not yet released
    /// back past its slab's retirement).
    unsafe fn header_of(slot: *mut u8) -> *mut SlabHeader {
        ((slot as usize) & SLAB_MASK) as *mut SlabHeader
    }

    // ---- magazines ------------------------------------------------------

    struct MagazineSet {
        mags: UnsafeCell<[Vec<*mut u8>; N_CLASSES]>,
    }

    /// Vacated magazine shards, recycled by the next thread to start.
    /// Stored as addresses; a shard is owned exclusively by whichever
    /// thread popped it (or by nobody, while it sits here).
    static FREE_SETS: Mutex<Vec<usize>> = Mutex::new(Vec::new());

    struct MagGuard(*mut MagazineSet);

    impl MagGuard {
        fn claim() -> Self {
            let recycled = FREE_SETS.lock().unwrap().pop();
            let set = match recycled {
                Some(addr) => addr as *mut MagazineSet,
                None => Box::into_raw(Box::new(MagazineSet {
                    mags: UnsafeCell::new(std::array::from_fn(|_| Vec::new())),
                })),
            };
            MagGuard(set)
        }
    }

    impl Drop for MagGuard {
        fn drop(&mut self) {
            // Thread exit: hand every cached slot back to its slab so a
            // dead thread's magazine cannot strand memory or block slab
            // retirement. The shard itself is recycled, not freed.
            unsafe { drain_set(self.0) };
            FREE_SETS.lock().unwrap().push(self.0 as usize);
        }
    }

    thread_local! {
        static TLS_MAGS: MagGuard = MagGuard::claim();
    }

    /// Drains every magazine in `set` back to the slabs. Returns how many
    /// slots were flushed.
    ///
    /// Takes each class's `Vec` out before touching the pool again: a
    /// remote free can retire a slab, whose sink may re-enter the pool
    /// (an epoch reap executing deferred releases), and that re-entry
    /// must not alias the `&mut` we hold on the magazine array. Slots
    /// pushed back by such re-entrant frees simply stay in the shard for
    /// its next owner.
    unsafe fn drain_set(set: *mut MagazineSet) -> usize {
        let mut n = 0;
        for cls in 0..N_CLASSES {
            let slots = {
                let mags = unsafe { &mut *(*set).mags.get() };
                mem::take(&mut mags[cls])
            };
            n += slots.len();
            for slot in slots {
                unsafe { remote_free(header_of(slot), slot) };
            }
        }
        n
    }

    fn magazine_pop(cls: usize) -> Option<*mut u8> {
        TLS_MAGS
            .try_with(|g| {
                // Safety: the shard is owned by this thread; the borrow
                // does not outlive the closure and nothing re-entrant
                // runs inside it.
                let mags = unsafe { &mut *(*g.0).mags.get() };
                mags[cls].pop()
            })
            .ok()
            .flatten()
    }

    fn magazine_push(cls: usize, slot: *mut u8) -> bool {
        TLS_MAGS
            .try_with(|g| {
                let mags = unsafe { &mut *(*g.0).mags.get() };
                let m = &mut mags[cls];
                if m.len() < MAG_CAP {
                    m.push(slot);
                    true
                } else {
                    false
                }
            })
            .unwrap_or(false) // TLS torn down: fall through to remote free
    }

    // ---- slabs ----------------------------------------------------------

    fn new_slab(cls: usize) -> *mut SlabHeader {
        let ptr = unsafe { std::alloc::alloc(slab_layout()) };
        assert!(!ptr.is_null(), "lfrc-pool: slab allocation failed");
        let slot_size = ((cls + 1) * CLASS_GRAIN) as u32;
        let n_slots = ((SLAB_SIZE - HDR_RESERVE) / slot_size as usize) as u32;
        let hdr = ptr as *mut SlabHeader;
        unsafe {
            hdr.write(SlabHeader {
                magic: SLAB_MAGIC,
                class_idx: cls as u32,
                slot_size,
                n_slots,
                carved: AtomicU32::new(0),
                in_use: AtomicUsize::new(0),
                remote_head: AtomicUsize::new(0),
            });
        }
        SLABS_ALLOCATED.fetch_add(1, Ordering::Relaxed);
        let live = SLABS_LIVE.fetch_add(1, Ordering::Relaxed) + 1;
        counters::add(Counter::PoolSlabAlloc, 1);
        counters::record_max(Counter::PoolSlabsLiveHighWater, live);
        hdr
    }

    /// Pops one slot off `hdr`'s remote stack. Called only under the
    /// class lock (pops are serialized; pushes stay lock-free), which is
    /// what makes the pop ABA-free: no one else can remove `head` while
    /// we hold the lock, so if the CAS sees `head` it still links `next`.
    unsafe fn remote_pop(hdr: *mut SlabHeader) -> Option<*mut u8> {
        let h = unsafe { &*hdr };
        loop {
            let head = h.remote_head.load(Ordering::Acquire);
            if head == 0 {
                return None;
            }
            let next = unsafe { *(head as *const usize) };
            if h.remote_head
                .compare_exchange_weak(head, next, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                h.in_use.fetch_add(1, Ordering::AcqRel);
                return Some(head as *mut u8);
            }
        }
    }

    /// Takes up to `want` never-used slots from `hdr`'s bump region.
    /// Called only under the class lock.
    unsafe fn carve(hdr: *mut SlabHeader, want: usize, out: &mut Vec<*mut u8>) -> usize {
        let h = unsafe { &*hdr };
        let carved = h.carved.load(Ordering::Relaxed) as usize;
        let n = (h.n_slots as usize - carved).min(want);
        if n == 0 {
            return 0;
        }
        let base = hdr as usize + HDR_RESERVE;
        for i in 0..n {
            out.push((base + (carved + i) * h.slot_size as usize) as *mut u8);
        }
        h.carved.store((carved + n) as u32, Ordering::Relaxed);
        h.in_use.fetch_add(n, Ordering::AcqRel);
        n
    }

    /// Pushes a slot onto its slab's remote stack and runs the
    /// retirement check. Lock-free except for the (rare) retirement
    /// itself. Never called with the class lock held — retirement takes
    /// it.
    unsafe fn remote_free(hdr: *mut SlabHeader, slot: *mut u8) {
        yield_point(InstrSite::PoolRemoteFree);
        let h = unsafe { &*hdr };
        debug_assert_eq!(h.magic, SLAB_MAGIC, "remote_free on a non-pool pointer");
        let mut head = h.remote_head.load(Ordering::Relaxed);
        loop {
            unsafe { (slot as *mut usize).write(head) };
            match h.remote_head.compare_exchange_weak(
                head,
                slot as usize,
                Ordering::Release,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(cur) => head = cur,
            }
        }
        counters::add(Counter::PoolRemoteFree, 1);
        let prev = h.in_use.fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev >= 1, "pool in_use underflow");
        if prev == 1 {
            try_retire(hdr);
        }
    }

    /// Retires `hdr` if it is still fully free. Races resolve under the
    /// class lock: a refill that harvested slots in the meantime raised
    /// `in_use` (under the lock) and we back off; a second freeing thread
    /// that also saw zero finds the slab already unlinked and backs off.
    fn try_retire(hdr: *mut SlabHeader) {
        let h = unsafe { &*hdr };
        let cls = h.class_idx as usize;
        {
            let mut st = CLASSES[cls].lock().unwrap();
            let fully_carved = h.carved.load(Ordering::Relaxed) as usize == h.n_slots as usize;
            if !fully_carved || h.in_use.load(Ordering::Acquire) != 0 {
                return;
            }
            let Some(pos) = st.slabs.iter().position(|&s| s == hdr as usize) else {
                return; // already retired by a racing thread
            };
            st.slabs.swap_remove(pos);
            if st.current == hdr as usize {
                st.current = 0;
            }
        }
        // Lock released before anything that can park (the yield hook) or
        // re-enter the pool (the sink may drive an epoch reap).
        SLABS_RETIRED.fetch_add(1, Ordering::Relaxed);
        SLABS_LIVE.fetch_sub(1, Ordering::Relaxed);
        counters::add(Counter::PoolSlabRetire, 1);
        yield_point(InstrSite::PoolSlabRetire);
        let sink = RETIRE_SINK.load(Ordering::Acquire);
        if sink == 0 {
            // Standalone use with no grace-period sink: leak the slab
            // (it stays mapped, which is always safe).
            return;
        }
        let sink: unsafe fn(*mut ()) = unsafe { mem::transmute(sink) };
        // Safety: the slab is unlinked and has no outstanding slots; the
        // sink contract says it will call `release_retired_slab` exactly
        // once, after readers quiesce.
        unsafe { sink(hdr as *mut ()) };
    }

    // ---- public entry points (wrapped by the crate root) ----------------

    pub fn alloc(layout: Layout) -> Option<NonNull<u8>> {
        let cls = class_of(layout)?;
        if let Some(p) = magazine_pop(cls) {
            counters::add(Counter::PoolMagazineHit, 1);
            yield_point(InstrSite::PoolMagazineHit);
            // Safety: magazines only ever hold non-null slot pointers.
            return Some(unsafe { NonNull::new_unchecked(p) });
        }
        counters::add(Counter::PoolMagazineMiss, 1);
        // Injected refill failure: the cold path is where a real pool
        // would hit mmap exhaustion, and `None` is the documented
        // "fall back to the global allocator" answer for every caller.
        if !instrument::alloc_allowed(instrument::AllocSite::PoolRefill) {
            return None;
        }
        Some(slow_alloc(cls))
    }

    fn slow_alloc(cls: usize) -> NonNull<u8> {
        let want = MAG_CAP / 2;
        let mut batch: Vec<*mut u8> = Vec::with_capacity(want);
        {
            let mut st = CLASSES[cls].lock().unwrap();
            // First harvest remote-freed slots — they are hot in some
            // cache and keep existing slabs filling up.
            for &s in &st.slabs {
                let hdr = s as *mut SlabHeader;
                while batch.len() < want {
                    match unsafe { remote_pop(hdr) } {
                        Some(slot) => batch.push(slot),
                        None => break,
                    }
                }
                if batch.len() >= want {
                    break;
                }
            }
            // Then carve fresh slots; map at most one new slab per miss.
            while batch.len() < want {
                if st.current == 0 {
                    if !batch.is_empty() {
                        break;
                    }
                    let hdr = new_slab(cls);
                    st.slabs.push(hdr as usize);
                    st.current = hdr as usize;
                }
                let hdr = st.current as *mut SlabHeader;
                if unsafe { carve(hdr, want - batch.len(), &mut batch) } == 0 {
                    st.current = 0;
                }
            }
        }
        let out = batch.pop().unwrap();
        // Stock the magazine outside the class lock: a full magazine
        // drops slots through remote_free, which may retire a slab and
        // must be able to take the lock.
        for slot in batch {
            if !magazine_push(cls, slot) {
                unsafe { remote_free(header_of(slot), slot) };
            }
        }
        // Safety: slots are carved from non-null slab interiors.
        unsafe { NonNull::new_unchecked(out) }
    }

    pub unsafe fn dealloc(ptr: NonNull<u8>) {
        let slot = ptr.as_ptr();
        let hdr = unsafe { header_of(slot) };
        debug_assert_eq!(
            unsafe { (*hdr).magic },
            SLAB_MAGIC,
            "lfrc_pool::dealloc on a pointer the pool did not allocate"
        );
        let cls = unsafe { (*hdr).class_idx } as usize;
        if magazine_push(cls, slot) {
            return;
        }
        unsafe { remote_free(hdr, slot) };
    }

    pub fn set_retire_sink(sink: unsafe fn(*mut ())) {
        RETIRE_SINK.store(sink as usize, Ordering::Release);
    }

    pub unsafe fn release_retired_slab(p: *mut ()) {
        let hdr = p as *mut SlabHeader;
        unsafe {
            debug_assert_eq!(
                (*hdr).magic,
                SLAB_MAGIC,
                "double release of a retired slab?"
            );
            // Poison the magic so a late header_of on a stale slot fails
            // loudly in debug builds (until the pages are reused).
            (*hdr).magic = 0;
            std::alloc::dealloc(p as *mut u8, slab_layout());
        }
        SLABS_RELEASED.fetch_add(1, Ordering::Relaxed);
    }

    pub fn flush_magazines() -> usize {
        TLS_MAGS
            .try_with(|g| unsafe { drain_set(g.0) })
            .unwrap_or(0)
    }

    pub fn stats() -> PoolStats {
        let allocated = SLABS_ALLOCATED.load(Ordering::Acquire);
        let released = SLABS_RELEASED.load(Ordering::Acquire);
        PoolStats {
            slabs_live: SLABS_LIVE.load(Ordering::Acquire),
            slabs_allocated: allocated,
            slabs_retired: SLABS_RETIRED.load(Ordering::Acquire),
            slabs_released: released,
            bytes_mapped: allocated.saturating_sub(released) * SLAB_SIZE as u64,
        }
    }

    #[cfg(test)]
    pub(crate) fn class_of_for_tests(layout: Layout) -> Option<usize> {
        class_of(layout)
    }
}

/// Allocates a slot big enough for `layout`, or `None` when the pool
/// cannot serve it — size above [`MAX_ALLOC`], alignment above 64, or the
/// `enabled` feature is off. `None` means "use the global allocator";
/// the caller must remember which path it took (e.g. a `pooled` flag in
/// the object header) and free accordingly.
///
/// The returned memory is **uninitialized** — in particular, a recycled
/// slot's first word holds a stale intrusive-stack link.
pub fn alloc(layout: Layout) -> Option<NonNull<u8>> {
    #[cfg(feature = "enabled")]
    return imp::alloc(layout);
    #[cfg(not(feature = "enabled"))]
    {
        let _ = layout;
        None
    }
}

/// Returns a slot to the pool: onto the calling thread's magazine when
/// there is room, else onto the owning slab's lock-free remote stack
/// (possibly triggering that slab's retirement).
///
/// # Safety
///
/// * `ptr` must have come from [`alloc`] and be returned exactly once.
/// * The slot's contents must already be dropped; the pool overwrites
///   the first word.
/// * **Epoch discipline:** callers on the protocol's free path must not
///   call this directly — they defer it by one grace period (see the
///   crate docs), because the slot re-enters circulation immediately.
pub unsafe fn dealloc(ptr: NonNull<u8>) {
    #[cfg(feature = "enabled")]
    unsafe {
        imp::dealloc(ptr)
    };
    #[cfg(not(feature = "enabled"))]
    {
        let _ = ptr;
        unreachable!("lfrc_pool::dealloc without the `enabled` feature — alloc never succeeds");
    }
}

/// Installs the retirement sink: called with each retired slab (as a
/// `*mut ()`), it must arrange for [`release_retired_slab`] to run on
/// that pointer exactly once, after a grace period in which no thread
/// can still read the slab's pages. `lfrc-dcas` installs a sink that
/// defers through its epoch collector; without one, retired slabs are
/// leaked (safe, merely unreclaimed).
pub fn set_retire_sink(sink: unsafe fn(*mut ())) {
    #[cfg(feature = "enabled")]
    imp::set_retire_sink(sink);
    #[cfg(not(feature = "enabled"))]
    let _ = sink;
}

/// Returns a retired slab's pages to the OS. The second half of the
/// retire-sink contract — pass this to `defer_fn`/`retire_fn` with the
/// pointer the sink received.
///
/// # Safety
///
/// `p` must be a pointer handed to the retire sink, released exactly
/// once, after every thread that could read the slab has quiesced.
pub unsafe fn release_retired_slab(p: *mut ()) {
    #[cfg(feature = "enabled")]
    unsafe {
        imp::release_retired_slab(p)
    };
    #[cfg(not(feature = "enabled"))]
    {
        let _ = p;
        unreachable!("lfrc_pool::release_retired_slab without the `enabled` feature");
    }
}

/// Drains the calling thread's magazines back to their slabs, so idle
/// cached slots cannot keep slabs alive. Returns the number of slots
/// flushed. Called automatically when a thread exits; call it manually
/// at quiescence points (experiment phase ends, shrink tests).
pub fn flush_magazines() -> usize {
    #[cfg(feature = "enabled")]
    return imp::flush_magazines();
    #[cfg(not(feature = "enabled"))]
    0
}

/// Current footprint gauges. All zeros when the pool is disabled.
pub fn stats() -> PoolStats {
    #[cfg(feature = "enabled")]
    return imp::stats();
    #[cfg(not(feature = "enabled"))]
    PoolStats::default()
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The pool is process-global state; tests that assert on gauge
    /// deltas serialize here and use generous (monotone-delta) checks.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn layout(size: usize) -> Layout {
        Layout::from_size_align(size, 8).unwrap()
    }

    #[test]
    fn class_mapping_boundaries() {
        let cls = |size| imp::class_of_for_tests(layout(size));
        assert_eq!(cls(1), Some(0));
        assert_eq!(cls(64), Some(0));
        assert_eq!(cls(65), Some(1));
        assert_eq!(cls(4096), Some(63));
        assert_eq!(cls(4097), None);
        assert_eq!(
            imp::class_of_for_tests(Layout::from_size_align(64, 128).unwrap()),
            None
        );
    }

    #[test]
    fn roundtrip_is_lifo_and_aligned() {
        let _g = TEST_LOCK.lock().unwrap();
        let l = layout(48);
        let p = alloc(l).unwrap();
        assert_eq!(
            p.as_ptr() as usize % 64,
            0,
            "slots sit on 64-byte boundaries"
        );
        assert_ne!(
            p.as_ptr() as usize % SLAB_SIZE,
            0,
            "slot 0 must not alias the slab header"
        );
        unsafe { dealloc(p) };
        let q = alloc(l).unwrap();
        assert_eq!(
            p, q,
            "magazine is LIFO: immediate realloc returns the same slot"
        );
        unsafe { dealloc(q) };
    }

    #[test]
    fn oversized_and_overaligned_fall_back() {
        assert!(alloc(layout(MAX_ALLOC + 1)).is_none());
        assert!(alloc(Layout::from_size_align(64, 4096).unwrap()).is_none());
    }

    #[test]
    fn churn_retires_fully_free_slabs() {
        let _g = TEST_LOCK.lock().unwrap();
        set_retire_sink(release_retired_slab); // immediate release: no readers here
        let before = stats();
        // Class 1008→1024 is used by this test only; a 64 KiB slab holds
        // (65536-64)/1024 = 63 slots, so 200 live objects span 4 slabs.
        let l = layout(1008);
        let ptrs: Vec<_> = (0..200).map(|_| alloc(l).unwrap()).collect();
        for p in ptrs {
            unsafe { dealloc(p) };
        }
        flush_magazines();
        let after = stats();
        assert!(
            after.slabs_retired >= before.slabs_retired + 3,
            "freeing everything should retire the fully-carved slabs: {before:?} -> {after:?}"
        );
        assert!(after.slabs_released >= before.slabs_released + 3);
        // The one partially-carved slab per class may stay live.
        assert_eq!(
            after.slabs_live,
            after.slabs_allocated - after.slabs_retired,
            "live gauge must stay consistent"
        );
    }

    #[test]
    fn cross_thread_free_and_flush_retire_the_slab() {
        let _g = TEST_LOCK.lock().unwrap();
        set_retire_sink(release_retired_slab);
        let before = stats();
        // Unique class for this test: 2048-byte slots, 31 per slab.
        let l = layout(2048);
        let ptrs: Vec<usize> = std::thread::spawn(move || {
            (0..31)
                .map(|_| alloc(l).unwrap().as_ptr() as usize)
                .collect()
        })
        .join()
        .unwrap();
        // Free on a different thread than allocated.
        for p in ptrs {
            unsafe { dealloc(NonNull::new(p as *mut u8).unwrap()) };
        }
        flush_magazines();
        let after = stats();
        assert!(
            after.slabs_retired > before.slabs_retired,
            "cross-thread frees must still retire the slab: {before:?} -> {after:?}"
        );
    }

    #[test]
    fn thread_exit_drains_magazines() {
        let _g = TEST_LOCK.lock().unwrap();
        set_retire_sink(release_retired_slab);
        let before = stats();
        // 3072-byte slots: 21 per slab, unique to this test. The worker
        // frees into its own magazine and exits WITHOUT flushing; the
        // vacate drain must hand the slots back so the slab retires.
        std::thread::spawn(|| {
            let l = layout(3072);
            let ptrs: Vec<_> = (0..21).map(|_| alloc(l).unwrap()).collect();
            for p in ptrs {
                unsafe { dealloc(p) };
            }
        })
        .join()
        .unwrap();
        let after = stats();
        assert!(
            after.slabs_retired > before.slabs_retired,
            "thread exit must drain magazines and allow retirement: {before:?} -> {after:?}"
        );
    }

    #[test]
    fn multithreaded_churn_keeps_gauges_consistent() {
        let _g = TEST_LOCK.lock().unwrap();
        set_retire_sink(release_retired_slab);
        let threads: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    let l = layout(400 + t * 16);
                    for _ in 0..200 {
                        let ps: Vec<_> = (0..32).map(|_| alloc(l).unwrap()).collect();
                        for p in ps {
                            unsafe { dealloc(p) };
                        }
                    }
                    flush_magazines();
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = stats();
        assert!(s.slabs_retired <= s.slabs_allocated);
        assert!(s.slabs_released <= s.slabs_retired);
        assert_eq!(s.slabs_live, s.slabs_allocated - s.slabs_retired);
        assert_eq!(
            s.bytes_mapped,
            (s.slabs_allocated - s.slabs_released) * SLAB_SIZE as u64
        );
    }

    #[test]
    fn disabled_surface_matches_contract() {
        // Even with the feature on, the fallback contract is observable
        // through oversized requests.
        assert!(enabled());
        assert!(alloc(layout(MAX_ALLOC + 1)).is_none());
    }
}
