#!/usr/bin/env bash
# Regenerates every experiment table in EXPERIMENTS.md.
# Usage: ./run_experiments.sh [output-dir]
set -euo pipefail

out="${1:-experiment-results}"
mkdir -p "$out"

echo "Building release binaries..."
cargo build --release -p lfrc-bench --bins

for exp in exp1_ops exp2_deque exp3_memory exp4_stall exp5_aba \
           exp6_cycles exp7_dcas exp8_destroy exp9_breadth \
           exp10_extensions exp11_latency; do
    echo "=== $exp ==="
    cargo run --release -q -p lfrc-bench --bin "$exp" | tee "$out/$exp.txt"
    echo
done

# E12 compares builds, so it runs through `cargo bench` twice rather
# than a table binary: once with the pool (default) and once without.
echo "=== e12_pool ==="
{
    echo "== pool on (default features) =="
    cargo bench -q -p lfrc-bench --bench e12_pool
    echo
    echo "== pool off (--no-default-features --features obs) =="
    cargo bench -q -p lfrc-bench --bench e12_pool --no-default-features --features obs
} | tee "$out/e12_pool_regen.txt"

# E17 is two-part: the shard-count × skew sweep and batch-amortization
# tables come from the bench, then the sustained soak (>= 60s, paced)
# records the per-op-type tail table and writes the timeline JSONL to
# $out/obs/e17_kv.timeline.jsonl.
echo "=== e17_kv ==="
{
    cargo bench -q -p lfrc-bench --bench e17_kv
    echo
    echo "== sustained soak (LFRC_SOAK=1) =="
    LFRC_SOAK=1 LFRC_OBS_DIR="$out/obs" \
        cargo run --release -q -p lfrc-bench --bin kv_soak
} | tee "$out/e17_kv.txt"

echo "All experiment outputs written to $out/"
