#!/usr/bin/env bash
# Regenerates every experiment table in EXPERIMENTS.md.
# Usage: ./run_experiments.sh [output-dir]
set -euo pipefail

out="${1:-experiment-results}"
mkdir -p "$out"

echo "Building release binaries..."
cargo build --release -p lfrc-bench --bins

for exp in exp1_ops exp2_deque exp3_memory exp4_stall exp5_aba \
           exp6_cycles exp7_dcas exp8_destroy exp9_breadth \
           exp10_extensions exp11_latency; do
    echo "=== $exp ==="
    cargo run --release -q -p lfrc-bench --bin "$exp" | tee "$out/$exp.txt"
    echo
done

echo "All experiment outputs written to $out/"
