//! Memory that grows **and shrinks** — LFRC against its alternatives.
//!
//! The paper's §1: "it allows the memory consumption of the
//! implementation to grow and shrink over time", unlike freelist-bound
//! schemes (Valois) or leak-until-shutdown GC environments. This example
//! pushes a burst through three stacks and prints their footprints after
//! every phase.
//!
//! Run: `cargo run --release --example memory_reclamation`

use lfrc_baselines::ValoisStack;
use lfrc_core::McasWord;
use lfrc_structures::{ConcurrentStack, GcStack, LfrcStack};

const BURST: u64 = 10_000;

fn main() {
    let lfrc: LfrcStack<McasWord> = LfrcStack::new();
    let valois = ValoisStack::new();
    let gc = GcStack::new();

    let footprint =
        |phase: &str, lfrc: &LfrcStack<McasWord>, valois: &ValoisStack, gc: &GcStack| {
            println!(
                "{phase:>18} | lfrc live: {:>6} | valois pool: {:>6} | ebr pending: {:>6}",
                lfrc.heap().census().live(),
                valois.pool_nodes(),
                gc.collector().stats().pending(),
            );
        };

    println!("burst/drain cycles of {BURST} nodes; footprints after each phase\n");
    footprint("start", &lfrc, &valois, &gc);
    for cycle in 0..3 {
        for v in 0..BURST {
            lfrc.push(v);
            valois.push(v);
            gc.push(v);
        }
        footprint(&format!("burst {cycle}"), &lfrc, &valois, &gc);
        while lfrc.pop().is_some() {}
        while valois.pop().is_some() {}
        while gc.pop().is_some() {}
        // Pops park their decrements on this thread's buffer (the
        // deferred fast path, DESIGN.md §5.9); flush so the footprint
        // reflects a quiesced thread.
        lfrc_core::flush_thread();
        footprint(&format!("drain {cycle}"), &lfrc, &valois, &gc);
    }
    lfrc_structures::flush_thread(gc.collector());
    footprint("after ebr flush", &lfrc, &valois, &gc);

    // The same grow-then-shrink story one layer down: when the `pool`
    // feature is on, LFRC nodes come from epoch-gated slabs, and the
    // *slabs themselves* must follow the paper's §1 property — mapped
    // memory returns to the OS once the burst drains, instead of
    // plateauing like a type-stable freelist.
    if lfrc_repro::pool::enabled() {
        let slab = |phase: &str| {
            let s = lfrc_repro::pool::stats();
            println!(
                "{phase:>18} | slabs live: {:>4} | bytes mapped: {:>9} | slabs released: {:>5}",
                s.slabs_live, s.bytes_mapped, s.slabs_released
            );
        };
        println!("\npool slab footprint over one more burst/drain cycle\n");
        slab("quiesced");
        for v in 0..BURST {
            lfrc.push(v);
        }
        slab("burst");
        while lfrc.pop().is_some() {}
        lfrc_core::flush_thread();
        lfrc_repro::dcas::quiesce();
        lfrc_repro::pool::flush_magazines();
        lfrc_repro::dcas::quiesce();
        slab("drain");
    }

    println!(
        "\nreading the columns:\n\
         * lfrc   — returns to 0 after every drain: once the thread's\n\
           decrement buffer flushes, nodes go back to the allocator —\n\
           the slab pool when the `pool` feature is on (whose slabs\n\
           are themselves released, see the slab table), else the\n\
           general allocator.\n\
         * valois — plateaus at the high-water mark forever: type-stable\n\
           freelist memory can never be reused for anything else (the\n\
           cost of making CAS-only counting safe).\n\
         * ebr    — shrinks, but only after a grace period, and requires\n\
           the 'GC environment' LFRC exists to remove.\n"
    );
    assert_eq!(lfrc.heap().census().live(), 0);
    assert_eq!(valois.pool_nodes(), BURST);
}
