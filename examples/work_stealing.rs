//! Work-stealing scheduler on the LFRC Snark deque.
//!
//! Double-ended queues are the classic substrate for work stealing —
//! the workload the Snark line of papers was motivated by: each worker
//! owns a deque, pushes and pops its own tasks at the right end (LIFO,
//! cache-friendly) and steals from other workers' left ends (FIFO,
//! oldest-first). This example runs a synthetic fork/join computation
//! (a divide-and-conquer sum) across workers whose deques are
//! GC-independent LFRC Snarks — no GC, no freelist, memory returned as
//! task nodes retire.
//!
//! Run: `cargo run --release --example work_stealing`

use std::sync::atomic::{AtomicU64, Ordering};

use lfrc_core::McasWord;
use lfrc_deque::{ConcurrentDeque, LfrcSnarkRepaired};

const WORKERS: usize = 4;
/// Tasks encode [lo, hi) ranges packed into a u64 (20 bits each suffice).
const RANGE: u64 = 1 << 16;
/// Ranges at most this wide are computed directly instead of split.
const LEAF: u64 = 64;

fn encode(lo: u64, hi: u64) -> u64 {
    (lo << 20) | hi
}

fn decode(task: u64) -> (u64, u64) {
    (task >> 20, task & ((1 << 20) - 1))
}

fn main() {
    let deques: Vec<LfrcSnarkRepaired<McasWord>> =
        (0..WORKERS).map(|_| LfrcSnarkRepaired::new()).collect();
    let total = AtomicU64::new(0);
    let outstanding = AtomicU64::new(1);
    let steals = AtomicU64::new(0);
    let local_pops = AtomicU64::new(0);

    // Seed worker 0 with the root task: sum of 0..RANGE.
    deques[0].push_right(encode(0, RANGE));

    std::thread::scope(|s| {
        for me in 0..WORKERS {
            let (deques, total, outstanding, steals, local_pops) =
                (&deques, &total, &outstanding, &steals, &local_pops);
            s.spawn(move || {
                let mut rng = me as u64 + 1;
                while outstanding.load(Ordering::SeqCst) > 0 {
                    // Own deque first (LIFO end), then steal (FIFO end).
                    let task = deques[me].pop_right().inspect(|_| {
                        local_pops.fetch_add(1, Ordering::Relaxed);
                    });
                    let task = task.or_else(|| {
                        rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let victim = (rng >> 33) as usize % WORKERS;
                        if victim == me {
                            return None;
                        }
                        deques[victim].pop_left().inspect(|_| {
                            steals.fetch_add(1, Ordering::Relaxed);
                        })
                    });
                    let Some(task) = task else {
                        std::thread::yield_now();
                        continue;
                    };
                    let (lo, hi) = decode(task);
                    if hi - lo <= LEAF {
                        // Leaf: compute directly.
                        let sum: u64 = (lo..hi).sum();
                        total.fetch_add(sum, Ordering::Relaxed);
                        outstanding.fetch_sub(1, Ordering::SeqCst);
                    } else {
                        // Split: push both halves (one extra outstanding).
                        let mid = lo + (hi - lo) / 2;
                        outstanding.fetch_add(1, Ordering::SeqCst);
                        deques[me].push_right(encode(lo, mid));
                        deques[me].push_right(encode(mid, hi));
                    }
                }
                // Pops ride the deferred fast path: hand this worker's
                // parked decrements back before the scope ends.
                lfrc_core::flush_thread();
            });
        }
    });

    let expected: u64 = RANGE * (RANGE - 1) / 2;
    let got = total.load(Ordering::Relaxed);
    println!("work-stealing sum of 0..{RANGE}:");
    println!("  result   = {got} (expected {expected})");
    println!("  leaves   = {}", local_pops.load(Ordering::Relaxed));
    println!("  steals   = {}", steals.load(Ordering::Relaxed));
    assert_eq!(got, expected);

    // All task nodes have retired through LFRC: nothing lives but the
    // per-deque Dummy sentinels. The frees themselves are epoch-deferred
    // (and `scope` can return before a worker's TLS-exit flush runs), so
    // nudge the collector until the census settles.
    let t0 = std::time::Instant::now();
    while deques.iter().any(|d| d.heap().census().live() > 1)
        && t0.elapsed() < std::time::Duration::from_secs(5)
    {
        lfrc_dcas::quiesce();
        std::thread::yield_now();
    }
    for (i, d) in deques.iter().enumerate() {
        let live = d.heap().census().live();
        println!("  deque {i}: {live} live node(s) (the Dummy sentinel)");
        assert!(live <= 1, "deque {i} leaked: {live} live");
    }
    println!("done — lock-free, GC-free, freelist-free.");
}
