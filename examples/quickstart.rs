//! Quickstart: lock-free reference counting in five minutes.
//!
//! Builds a tiny concurrent linked structure with the LFRC safe layer,
//! shows counted loads/stores/CASes from several threads, and proves the
//! headline properties at the end: no leaks, no freelist, memory gone
//! the instant the last pointer is.
//!
//! Run: `cargo run --release --example quickstart`

use std::sync::atomic::{AtomicU64, Ordering};

use lfrc_core::{Heap, Links, Local, McasWord, PtrField, SharedField};

/// Our node type. Step 1 of the paper's methodology (the `rc` field) is
/// handled by the library's object header; step 2 (enumerate the
/// pointers) is the `Links` impl below.
struct Node {
    value: u64,
    next: PtrField<Node, McasWord>,
}

impl Links<McasWord> for Node {
    fn for_each_link(&self, f: &mut dyn FnMut(&PtrField<Node, McasWord>)) {
        f(&self.next);
    }
}

fn main() {
    // A heap per node type; its census counts live objects for us.
    let heap: Heap<Node, McasWord> = Heap::new();

    // A shared root — the paper's "pointer to a shared memory location
    // that contains a pointer". Its Drop releases the reference (step 6).
    let head: SharedField<Node, McasWord> = SharedField::null();

    println!("== single-threaded warmup ==");
    // Allocation returns a counted Local (rc = 1). Storing it into the
    // root is LFRCStore: the root takes its own counted reference.
    let n1 = heap.alloc(Node {
        value: 1,
        next: PtrField::null(),
    });
    head.store(Some(&n1));
    println!("after store: rc(n1) = {}", Local::ref_count(&n1)); // 2

    // LFRCLoad hands back a counted reference — this is the operation
    // that needs DCAS under the hood (increment the count atomically
    // with checking the pointer still exists).
    let loaded = head.load().expect("head is set");
    assert!(Local::ptr_eq(&n1, &loaded));
    println!("after load:  rc(n1) = {}", Local::ref_count(&n1)); // 3
    drop(loaded);
    drop(n1);
    println!("live objects: {}", heap.census().live()); // 1 (the root's)

    println!("\n== concurrent push race (LFRCCAS) ==");
    // Eight threads race to prepend nodes with compare_and_set; every
    // failure path compensates its speculative count increment, so the
    // census must balance perfectly afterwards.
    const THREADS: usize = 8;
    const PER: usize = 500;
    let pushed = AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let (heap, head, pushed) = (&heap, &head, &pushed);
            s.spawn(move || {
                for i in 0..PER {
                    let node = heap.alloc(Node {
                        value: (t * PER + i) as u64,
                        next: PtrField::null(),
                    });
                    loop {
                        let cur = head.load();
                        node.next.store(cur.as_ref());
                        if head.compare_and_set(cur.as_ref(), Some(&node)) {
                            pushed.fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                    }
                }
            });
        }
    });
    println!(
        "pushed {} nodes from {THREADS} threads",
        pushed.load(Ordering::Relaxed)
    );
    println!("live objects: {} (+1 warmup node)", heap.census().live());

    println!("\n== walk the list with counted loads ==");
    let mut sum = 0u64;
    let mut len = 0u64;
    let mut cursor = head.load();
    while let Some(node) = cursor {
        sum += node.value;
        len += 1;
        cursor = node.next.load(); // each hop is a counted LFRCLoad
    }
    println!("len = {len}, value sum = {sum}");

    println!("\n== drop the root: everything cascades ==");
    head.store(None);
    println!("live objects after store(None): {}", heap.census().live());
    assert_eq!(heap.census().live(), 0);
    println!(
        "allocated {} / freed {} — no leaks, no freelist, no GC.",
        heap.census().allocs(),
        heap.census().frees()
    );
}
