//! A background reclaimer thread — the paper's §7 future work, deployed.
//!
//! "One obvious example is to apply techniques that allow large
//! structures to be collected incrementally. This would avoid long
//! delays when a thread destroys the last pointer to a large structure."
//!
//! Here a latency-sensitive "mutator" thread drops the last pointers to
//! large chains in O(1) (`Backlog::destroy_deferred`), while a dedicated
//! reclaimer thread drains the shared backlog in bounded steps. The
//! mutator's worst observed drop pause is printed against the size of
//! what it dropped.
//!
//! Run: `cargo run --release --example background_reclaimer`

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use lfrc_core::{Backlog, Heap, Links, Local, McasWord, PtrField};

struct ChainNode {
    #[allow(dead_code)]
    id: u64,
    next: PtrField<ChainNode, McasWord>,
}

impl Links<McasWord> for ChainNode {
    fn for_each_link(&self, f: &mut dyn FnMut(&PtrField<ChainNode, McasWord>)) {
        f(&self.next);
    }
}

fn build_chain(heap: &Heap<ChainNode, McasWord>, len: u64) -> Local<ChainNode, McasWord> {
    let mut head = heap.alloc(ChainNode {
        id: 0,
        next: PtrField::null(),
    });
    for id in 1..len {
        let n = heap.alloc(ChainNode {
            id,
            next: PtrField::null(),
        });
        n.next.store_consume(head);
        head = n;
    }
    head
}

fn main() {
    let heap: Heap<ChainNode, McasWord> = Heap::new();
    let backlog: Backlog<ChainNode, McasWord> = Backlog::new();
    let done = AtomicBool::new(false);

    std::thread::scope(|s| {
        // The reclaimer: drains whatever the mutator parks, 512 nodes at
        // a time, yielding between steps so it never hogs the core.
        {
            let (backlog, done) = (&backlog, &done);
            s.spawn(move || {
                let mut freed = 0u64;
                loop {
                    let n = backlog.step(512) as u64;
                    freed += n;
                    if n == 0 {
                        if done.load(Ordering::SeqCst) && backlog.is_empty() {
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
                println!("reclaimer: freed {freed} nodes in the background");
            });
        }
        // The mutator: builds and drops chains of growing size; its drop
        // pause must stay O(1) regardless.
        {
            let (heap, backlog, done) = (&heap, &backlog, &done);
            s.spawn(move || {
                println!(
                    "{:>12} {:>16} {:>16}",
                    "chain len", "drop pause", "live after drop"
                );
                for len in [1_000u64, 10_000, 100_000, 400_000] {
                    let head = build_chain(heap, len);
                    let start = Instant::now();
                    backlog.destroy_deferred(head); // O(1) — the pause
                    let pause = start.elapsed();
                    println!(
                        "{len:>12} {:>13.2}us {:>16}",
                        pause.as_secs_f64() * 1e6,
                        heap.census().live()
                    );
                }
                done.store(true, Ordering::SeqCst);
            });
        }
    });

    assert!(backlog.is_empty());
    assert_eq!(heap.census().live(), 0, "background reclamation incomplete");
    println!(
        "all {} allocations reclaimed; mutator never paused for the cascade.",
        heap.census().allocs()
    );
}
