//! Lock-freedom, demonstrated: freeze a thread mid-operation and watch
//! who keeps going.
//!
//! The paper (§1, footnote 2) defines lock-freedom as system-wide
//! progress under arbitrary delays. Here one worker is frozen *inside*
//! a deque operation via an instrumented pause point — for the mutex
//! baseline that means inside the critical section — while three others
//! keep working for a fixed window.
//!
//! Run: `cargo run --release --example stall_demo`

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

use lfrc_baselines::LockedDeque;
use lfrc_core::McasWord;
use lfrc_deque::{ConcurrentDeque, HookPause, LfrcSnarkRepaired, PauseSite};

const WORKERS: usize = 4;
const WINDOW: Duration = Duration::from_millis(400);

fn demo(d: &dyn ConcurrentDeque) -> u64 {
    let release = AtomicBool::new(false);
    let frozen_now = AtomicBool::new(false);
    let survivors_ops = AtomicU64::new(0);
    // Worker 0 plus the churners meet here only *after* the freeze is
    // confirmed, so the whole measurement window runs with the stall in
    // place (important on single-core hosts, where scheduling could
    // otherwise delay worker 0's first operation by most of the window).
    let barrier = Barrier::new(WORKERS - 1);
    for v in 0..256 {
        d.push_right(v);
    }
    std::thread::scope(|s| {
        // Worker 0: installs a hook that freezes it inside its first pop.
        {
            let (d, release, frozen_now) = (&d, &release, &frozen_now);
            s.spawn(move || {
                let frozen = AtomicBool::new(false);
                // Safety of lifetime: the hook dies with this scoped
                // thread (thread-local drop), and `release`/`frozen_now`
                // outlive the scope.
                let release: &'static AtomicBool =
                    unsafe { std::mem::transmute::<&AtomicBool, _>(release) };
                let frozen_now: &'static AtomicBool =
                    unsafe { std::mem::transmute::<&AtomicBool, _>(frozen_now) };
                HookPause::set_thread_hook(Some(Box::new(move |site| {
                    if site == PauseSite::PopBeforeDcas && !frozen.swap(true, Ordering::SeqCst) {
                        println!("  worker 0: frozen mid-pop …");
                        frozen_now.store(true, Ordering::SeqCst);
                        while !release.load(Ordering::SeqCst) {
                            std::thread::yield_now();
                        }
                        println!("  worker 0: released");
                    }
                })));
                let _ = d.pop_left(); // freezes in here
            });
        }
        // Workers 1..: wait for the freeze, then churn for the window.
        for w in 1..WORKERS {
            let (d, ops, barrier, frozen_now) = (&d, &survivors_ops, &barrier, &frozen_now);
            s.spawn(move || {
                while !frozen_now.load(Ordering::SeqCst) {
                    std::thread::yield_now();
                }
                barrier.wait();
                let start = Instant::now();
                let mut n = 0u64;
                while start.elapsed() < WINDOW {
                    d.push_right(w as u64);
                    let _ = d.pop_left();
                    n += 2;
                }
                ops.fetch_add(n, Ordering::Relaxed);
            });
        }
        // Unfreeze after the window so worker 0 can exit.
        while !frozen_now.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }
        std::thread::sleep(WINDOW + Duration::from_millis(50));
        release.store(true, Ordering::SeqCst);
    });
    survivors_ops.load(Ordering::Relaxed)
}

fn main() {
    println!(
        "{WORKERS} workers, worker 0 frozen inside a pop for {}ms.\n",
        WINDOW.as_millis()
    );

    println!("LFRC Snark (lock-free):");
    let lfrc: LfrcSnarkRepaired<McasWord, HookPause> = LfrcSnarkRepaired::new();
    let ops = demo(&lfrc);
    println!("  survivors completed {ops} ops — progress unharmed.\n");
    assert!(ops > 0);

    println!("Mutex deque (blocking):");
    let locked: LockedDeque<HookPause> = LockedDeque::new();
    let ops = demo(&locked);
    println!(
        "  survivors completed {ops} ops — the frozen worker held the\n\
         lock, so everyone else waited out the window."
    );
    println!(
        "\nThat asymmetry is the paper's motivation for lock-free designs\n\
         (and why its methodology refuses to reintroduce locks for memory\n\
         management)."
    );
}
