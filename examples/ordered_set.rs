//! A concurrent membership service on the LFRC ordered set.
//!
//! Demonstrates the extension structure (`LfrcOrderedSet`): a sorted
//! lock-free list whose deletions are DCAS-validated instead of
//! pointer-tagged (pointer arithmetic being off-limits under LFRC
//! compliance). Several "session" threads register and deregister ids
//! while an auditor continuously checks membership; at the end, the set
//! is exactly the registrations that were never deregistered, and every
//! node the set ever allocated has been returned to the allocator.
//!
//! Run: `cargo run --release --example ordered_set`

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use lfrc_core::McasWord;
use lfrc_structures::LfrcOrderedSet;

const WORKERS: usize = 4;
const SESSIONS_PER_WORKER: u64 = 1_000;

fn main() {
    let set: LfrcOrderedSet<McasWord> = LfrcOrderedSet::new();
    let done = AtomicBool::new(false);
    let audits = AtomicU64::new(0);

    std::thread::scope(|s| {
        // Session workers: register an id, do "work", deregister most.
        for w in 0..WORKERS as u64 {
            let set = &set;
            s.spawn(move || {
                for i in 0..SESSIONS_PER_WORKER {
                    let id = w * SESSIONS_PER_WORKER + i;
                    assert!(set.insert(id), "fresh id must insert");
                    // Sessions divisible by 10 stay registered forever.
                    if !id.is_multiple_of(10) {
                        assert!(set.remove(id), "own id must remove");
                    }
                }
            });
        }
        // Auditor: hammers membership queries while the churn runs.
        {
            let (set, done, audits) = (&set, &done, &audits);
            s.spawn(move || {
                let mut k = 0u64;
                while !done.load(Ordering::Relaxed) {
                    std::hint::black_box(set.contains(k % (WORKERS as u64 * SESSIONS_PER_WORKER)));
                    k += 1;
                    audits.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // Let the scope's worker threads finish, then stop the auditor.
        // (Scoped threads join at scope end; flag first from a watcher.)
        s.spawn(|| {
            // Watch for completion: every permanent id present.
            let total = WORKERS as u64 * SESSIONS_PER_WORKER;
            loop {
                let mut all = true;
                for id in (0..total).step_by(10) {
                    if !set.contains(id) {
                        all = false;
                        break;
                    }
                }
                if all {
                    break;
                }
                std::thread::yield_now();
            }
            done.store(true, Ordering::Relaxed);
        });
    });

    let expected = WORKERS as u64 * SESSIONS_PER_WORKER / 10;
    println!(
        "permanent registrations: {} (expected {expected})",
        set.len()
    );
    assert_eq!(set.len() as u64, expected);
    println!(
        "audit queries answered during churn: {}",
        audits.load(Ordering::Relaxed)
    );

    // Every id divisible by 10 is in; everything else is out.
    for id in 0..WORKERS as u64 * SESSIONS_PER_WORKER {
        assert_eq!(set.contains(id), id % 10 == 0);
    }

    let census = std::sync::Arc::clone(set.heap().census());
    println!(
        "allocated {} nodes over the run; {} currently live",
        census.allocs(),
        census.live()
    );
    drop(set);
    assert_eq!(census.live(), 0);
    println!("set dropped: every node returned to the allocator. done.");
}
