//! The six-step LFRC transformation, narrated on a live example.
//!
//! The paper's §3 gives a recipe for turning a GC-dependent lock-free
//! structure into a GC-independent one. This example runs the *same
//! workload* through the Treiber stack before (GC-dependent, epoch
//! reclamation standing in for the collector) and after (LFRC) the
//! transformation, narrating what each step contributed and verifying
//! the result behaves identically.
//!
//! Run: `cargo run --release --example transform_demo`

use lfrc_core::McasWord;
use lfrc_structures::{ConcurrentStack, GcStack, LfrcStack};

fn churn(s: &dyn ConcurrentStack, label: &str) -> u64 {
    let mut checksum = 0u64;
    for round in 0..3u64 {
        for v in 0..1_000 {
            s.push(v * 7 + round);
        }
        while let Some(v) = s.pop() {
            checksum = checksum.wrapping_add(v).rotate_left(1);
        }
    }
    println!("  [{label}] workload checksum = {checksum:#x}");
    checksum
}

fn main() {
    println!("== BEFORE: the GC-dependent Treiber stack ==");
    println!(
        "Written as if a garbage collector existed: pop unlinks a node\n\
         and simply forgets it. Our epoch-based reclaimer plays the GC:\n\
         it defers the free until no reader can still be looking.\n"
    );
    let gc = GcStack::new();
    let before = churn(&gc, "gc-dependent");
    lfrc_structures::flush_thread(gc.collector());
    let stats = gc.collector().stats();
    println!(
        "  collector: {} nodes retired, {} freed, {} pending\n",
        stats.retired,
        stats.freed,
        stats.pending()
    );

    println!("== THE SIX STEPS (paper §3) ==");
    println!(
        "  1. add an `rc` field            -> LfrcBox header (rc cell)\n\
         2. provide LFRCDestroy          -> `Links::for_each_link` impl\n\
         3. ensure cycle-free garbage    -> popped stack nodes chain\n\
            forward only: free for stacks (Snark needed null sentinels)\n\
         4. correctly-typed operations   -> Rust generics\n\
         5. replace pointer operations   -> load/store/compare_and_set\n\
            wrappers over LFRCLoad/LFRCStore/LFRCCAS\n\
         6. manage local variables       -> `Local` RAII: Clone = LFRCCopy,\n\
            Drop = LFRCDestroy\n"
    );

    println!("== AFTER: the LFRC (GC-independent) Treiber stack ==");
    let lfrc: LfrcStack<McasWord> = LfrcStack::new();
    let after = churn(&lfrc, "lfrc");
    // The stack's hot loops run the deferred fast path (DESIGN.md §5.9):
    // pops park decrements on this thread's buffer, so flush before
    // reading the census.
    lfrc_core::flush_thread();
    println!(
        "  census: {} allocated, {} freed, {} live",
        lfrc.heap().census().allocs(),
        lfrc.heap().census().frees(),
        lfrc.heap().census().live()
    );

    assert_eq!(
        before, after,
        "the transformation must not change behaviour"
    );
    assert_eq!(lfrc.heap().census().live(), 0);
    println!(
        "\nsame checksum, zero live nodes, and no GC anywhere in the\n\
         LFRC stack's world: memory went straight back to the allocator\n\
         the moment each node's count drained. That is the paper's\n\
         contribution, end to end."
    );
}
